#!/usr/bin/env python3
"""Validate a BENCH_*.json artifact against the benchmark export schema.

Stdlib-only on purpose: this runs as a ctest hook and in CI containers
with no third-party Python packages. The schema is expressed as plain
data below (a miniature of JSON Schema: required keys, type checks,
nested objects/arrays) instead of pulling in jsonschema.

Usage: check_bench_json.py FILE [FILE...]
Exit status: 0 if every file validates, 1 otherwise.
"""

import json
import sys

NUMBER = (int, float)

# Leaf values are required types; dicts recurse; ("array", item_schema)
# requires a non-empty list whose entries all match item_schema.
SCHEMA = {
    "schema_version": int,
    "bench": str,
    "paper": str,
    "device": str,
    "configs": ("array", {
        "name": str,
        "dims": int,
        "radius": int,
        "config": str,
        "bsize_x": int,
        "bsize_y": int,
        "parvec": int,
        "partime": int,
        "input": {"nx": int, "ny": int, "nz": int},
        "model": {
            "fmax_mhz": NUMBER,
            "gbps": NUMBER,
            "gflops": NUMBER,
            "gcells": NUMBER,
            "power_watts": NUMBER,
            "roofline_ratio": NUMBER,
        },
        "simulation": {
            "nx": int,
            "ny": int,
            "nz": int,
            "iters": int,
            "wall_seconds": NUMBER,
            "cells_per_s": NUMBER,
        },
    }),
    "telemetry": {
        "metrics": ("array", {
            "name": str,
            "kind": str,
            "value": int,
            "sum": int,
        }),
    },
}

# The engine demo campaign artifact (stencilctl engine --json): per-job
# latency records plus session-level cache/pool summary. Dispatch: a
# document with a top-level "jobs" array uses this schema, otherwise the
# experiments-summary schema above.
ENGINE_SCHEMA = {
    "schema_version": int,
    "bench": str,
    "paper": str,
    "engine": {
        "workers": int,
        "queue_capacity": int,
        "plan_cache_capacity": int,
    },
    "jobs": ("array", {
        "label": str,
        "backend": str,
        "dims": int,
        "nx": int,
        "ny": int,
        "nz": int,
        "iters": int,
        "plan_cache_hit": bool,
        "exact": bool,
        "queue_ns": int,
        "run_ns": int,
        "cells_written": int,
    }),
    "summary": {
        "jobs": int,
        "completed": int,
        "failed": int,
        "cache_hit_rate": NUMBER,
        "plan_cache_hits": int,
        "plan_cache_misses": int,
        "pool_allocations": int,
        "pool_reuses": int,
        "queue_high_water": int,
    },
}

# The block-parallel scaling campaign artifact (stencilctl blockpar
# --json): one fixed workload, a timed sync baseline, and one record per
# worker count. Dispatch: a document with a top-level "runs" array uses
# this schema.
BLOCK_PARALLEL_SCHEMA = {
    "schema_version": int,
    "bench": str,
    "paper": str,
    "workload": {
        "dims": int,
        "nx": int,
        "ny": int,
        "nz": int,
        "radius": int,
        "parvec": int,
        "partime": int,
        "bsize_x": int,
        "bsize_y": int,
        "iters": int,
        "blocks": int,
    },
    "baseline": {
        "backend": str,
        "wall_seconds": NUMBER,
        "cells_per_s": NUMBER,
    },
    "runs": ("array", {
        "workers": int,
        "resolved_workers": int,
        "blocks": int,
        "wall_seconds": NUMBER,
        "cells_per_s": NUMBER,
        "blocks_per_s": NUMBER,
        "speedup_vs_sync": NUMBER,
        "exact": bool,
    }),
    "summary": {
        "runs": int,
        "exact_runs": int,
        "max_workers": int,
        "best_speedup": NUMBER,
        "redundancy": NUMBER,
        "hardware_concurrency": int,
        "speedup_gate_checked": bool,
    },
}

# The chaos campaign artifact (stencilctl chaos --json): lifecycle /
# cancellation outcome counts, cancel-latency percentiles, and circuit
# breaker counters. Dispatch: a document whose top-level "bench" is
# "chaos_campaign" uses this schema (checked before the jobs/runs keys).
CHAOS_SCHEMA = {
    "schema_version": int,
    "bench": str,
    "paper": str,
    "engine": {
        "workers": int,
        "queue_capacity": int,
        "breaker_threshold": int,
        "breaker_cooldown_ms": int,
    },
    "campaign": {
        "jobs": int,
        "seed": int,
        "cancels_requested": int,
        "deadlines_assigned": int,
        "faulted_jobs": int,
        "wall_seconds": NUMBER,
    },
    "results": {
        "done": int,
        "cancelled": int,
        "deadline_exceeded": int,
        "failed": int,
        "bit_exact": int,
        "hung": int,
    },
    "cancel_latency_ns": {
        "count": int,
        "p50": int,
        "p99": int,
    },
    "breaker": {
        "trips": int,
        "reroutes": int,
        "recovered": bool,
    },
    "pool": {
        "outstanding": int,
        "allocations": int,
        "reuses": int,
    },
}

# The serving-tier campaign artifact (stencilctl serve --json): QoS-class
# and tenant latency percentiles, shard balance/hit-rate, quota and
# isolation verdicts. Dispatch: top-level "bench" == "serving_campaign".
SERVING_SCHEMA = {
    "schema_version": int,
    "bench": str,
    "paper": str,
    "cluster": {
        "shards": int,
        "workers_per_shard": int,
        "vnodes_per_shard": int,
        "queue_capacity": int,
        "class_weights": ("array", int),
    },
    "campaign": {
        "jobs_attempted": int,
        "quota_proof_jobs": int,
        "calibration_jobs": int,
        "main_jobs": int,
        "job_kinds": int,
        "iters": int,
        "seed": int,
        "window": int,
        "wall_seconds": NUMBER,
    },
    "results": {
        "submitted": int,
        "rejected": int,
        "done": int,
        "failed": int,
        "hung": int,
        "bit_exact": int,
        "sink_jobs": int,
        "sink_exact": int,
        "chunks_delivered": int,
        "faults_fired": int,
    },
    "classes": ("array", {
        "name": str,
        "jobs": int,
        "p50_ns": int,
        "p99_ns": int,
        "p999_ns": int,
        "jobs_per_s": NUMBER,
    }),
    "tenants": ("array", {
        "name": str,
        "class": str,
        "role": str,
        "submitted": int,
        "rejected": int,
        "done": int,
        "p50_ns": int,
        "p99_ns": int,
    }),
    "shards": ("array", {
        "shard": int,
        "jobs_completed": int,
        "cache_hit_rate": NUMBER,
    }),
    "balance": {
        "max_over_mean": NUMBER,
        "bound": NUMBER,
    },
    "isolation": {
        "calib_interactive_p99_ns": int,
        "main_interactive_p99_ns": int,
        "calib_standard_p99_ns": int,
        "main_standard_p99_ns": int,
        "passed": bool,
    },
    "router": {
        "reroutes": int,
        "shard_drains": int,
        "shard_reloads": int,
    },
    "pool": {
        "outstanding": int,
    },
    "scale_probe": {
        "probe_jobs": int,
        "single_wall_seconds": NUMBER,
        "cluster_wall_seconds": NUMBER,
        "speedup": NUMBER,
        "needed_cores": int,
        "hardware_concurrency": int,
        "speedup_gate_checked": bool,
        "speedup_gate_ok": bool,
    },
}

QOS_CLASSES = {"interactive", "standard", "batch"}

# The kernel-dispatch scorecard (microbench_kernel_dispatch --json):
# per-envelope-point generic vs specialized throughput with exactness
# verdicts, the acceptance workload, and a block-parallel rerun on the
# specialized path. Dispatch: top-level "bench" == "kernel_dispatch"
# (checked before the jobs/runs keys).
KERNEL_DISPATCH_SCHEMA = {
    "schema_version": int,
    "bench": str,
    "paper": str,
    "mode": str,
    "hardware_concurrency": int,
    "envelope": ("array", {
        "name": str,
        "shape": str,
        "dims": int,
        "radius": int,
        "parvec": int,
        "nx": int,
        "ny": int,
        "nz": int,
        "iters": int,
        "generic_mcells_per_s": NUMBER,
        "specialized_mcells_per_s": NUMBER,
        "speedup": NUMBER,
        "exact": bool,
        "dispatched": bool,
    }),
    "acceptance": {
        "config": str,
        "nx": int,
        "ny": int,
        "nz": int,
        "iters": int,
        "generic_mcells_per_s": NUMBER,
        "specialized_mcells_per_s": NUMBER,
        "speedup": NUMBER,
        "exact": bool,
        "dispatched": bool,
    },
    "blockpar": {
        "baseline_mcells_per_s": NUMBER,
        "speedup_gate_checked": bool,
        "best_speedup": NUMBER,
        "runs": ("array", {
            "workers": int,
            "mcells_per_s": NUMBER,
            "speedup_vs_sync": NUMBER,
            "exact": bool,
        }),
    },
    "summary": {
        "points": int,
        "exact_points": int,
        "min_speedup": NUMBER,
        "median_speedup": NUMBER,
        "max_speedup": NUMBER,
    },
}

# The autotune scorecard (microbench_autotune --json / stencilctl tune
# --json): per-envelope-point paper-default vs cache-model-seeded vs
# empirically searched throughput with exactness verdicts, plus the
# acceptance workload. Dispatch: top-level "bench" == "autotune".
AUTOTUNE_SCHEMA = {
    "schema_version": int,
    "bench": str,
    "paper": str,
    "mode": str,
    "probe_cells": int,
    "envelope": ("array", {
        "name": str,
        "shape": str,
        "dims": int,
        "radius": int,
        "parvec": int,
        "nx": int,
        "ny": int,
        "nz": int,
        "iters": int,
        "default_config": str,
        "model_config": str,
        "tuned_config": str,
        "default_mcells_per_s": NUMBER,
        "model_mcells_per_s": NUMBER,
        "tuned_mcells_per_s": NUMBER,
        "probe_tuned_mcells_per_s": NUMBER,
        "probe_baseline_mcells_per_s": NUMBER,
        "gain": NUMBER,
        "model_gain": NUMBER,
        "candidates_probed": int,
        "search_ns": int,
        "exact": bool,
    }),
    "acceptance": {
        "config": str,
        "tuned_config": str,
        "nx": int,
        "ny": int,
        "nz": int,
        "iters": int,
        "default_mcells_per_s": NUMBER,
        "tuned_mcells_per_s": NUMBER,
        "gain": NUMBER,
        "candidates_probed": int,
        "search_ns": int,
        "exact": bool,
    },
    "summary": {
        "points": int,
        "exact_points": int,
        "min_gain": NUMBER,
        "median_gain": NUMBER,
        "max_gain": NUMBER,
    },
}

# The program campaign artifact (stencilctl program --json): the two
# flagship multi-field DAG workloads (2D FDTD, 3D damped wave) submitted
# through EngineCluster::submit, one record per campaign plus summary.
# Dispatch: top-level "bench" == "program_campaign".
PROGRAM_SCHEMA = {
    "schema_version": int,
    "bench": str,
    "paper": str,
    "cluster": {
        "shards": int,
        "workers": int,
    },
    "campaigns": ("array", {
        "name": str,
        "dims": int,
        "nx": int,
        "ny": int,
        "nz": int,
        "fields": int,
        "nodes": int,
        "steps": int,
        "nodes_scheduled": int,
        "chunks_delivered": int,
        "exact": bool,
        "chunks_exact": bool,
        "second_run_cache_hit": bool,
        "route_stable": bool,
        "wall_seconds": NUMBER,
        "mcups": NUMBER,
    }),
    "summary": {
        "campaigns": int,
        "all_exact": bool,
        "leaked_leases": int,
    },
}

# The host fingerprint block every schema_version >= 2 artifact must
# carry (bench/bench_util.hpp write_host_block): without it, numbers
# from different machines are indistinguishable in committed artifacts.
HOST_SCHEMA = {
    "cores": int,
    "l1_kib": int,
    "l2_kib": int,
    "llc_kib": int,
    "native_arch": bool,
    "compiler": str,
    "fingerprint": str,
}

METRIC_KINDS = {"counter", "gauge", "histogram"}
BACKENDS = {"automatic", "sync_sim", "concurrent", "block_parallel",
            "resilient", "cluster"}


def check(value, schema, path, errors):
    if isinstance(schema, dict):
        if not isinstance(value, dict):
            errors.append(f"{path}: expected object, got {type(value).__name__}")
            return
        for key, sub in schema.items():
            if key not in value:
                errors.append(f"{path}.{key}: missing required key")
            else:
                check(value[key], sub, f"{path}.{key}", errors)
    elif isinstance(schema, tuple) and schema and schema[0] == "array":
        if not isinstance(value, list):
            errors.append(f"{path}: expected array, got {type(value).__name__}")
            return
        if not value:
            errors.append(f"{path}: array must be non-empty")
        for i, item in enumerate(value):
            check(item, schema[1], f"{path}[{i}]", errors)
    else:
        # bool is an int subclass in Python; never accept it for numbers,
        # but do accept it when bool is what the schema asks for.
        if schema is bool:
            ok = isinstance(value, bool)
        else:
            ok = not isinstance(value, bool) and isinstance(value, schema)
        if not ok:
            want = getattr(schema, "__name__", "number")
            errors.append(
                f"{path}: expected {want}, got {type(value).__name__} "
                f"({value!r})")


def engine_semantic_checks(doc, errors):
    """Constraints of the engine campaign the type schema can't express."""
    for i, job in enumerate(doc.get("jobs", [])):
        if not isinstance(job, dict):
            continue
        path = f"$.jobs[{i}]"
        if job.get("dims") not in (2, 3):
            errors.append(f"{path}.dims: must be 2 or 3")
        if job.get("backend") not in BACKENDS:
            errors.append(
                f"{path}.backend: {job.get('backend')!r} not in "
                f"{sorted(BACKENDS)}")
        for key in ("queue_ns", "run_ns", "cells_written"):
            v = job.get(key)
            if isinstance(v, int) and not isinstance(v, bool) and v < 0:
                errors.append(f"{path}.{key}: negative")
        if job.get("exact") is False:
            errors.append(f"{path}: job output was not bit-exact")
    summary = doc.get("summary", {})
    if isinstance(summary, dict):
        rate = summary.get("cache_hit_rate")
        if (isinstance(rate, NUMBER) and not isinstance(rate, bool)
                and not 0.0 <= rate <= 1.0):
            errors.append("$.summary.cache_hit_rate: outside [0, 1]")
        jobs = summary.get("jobs")
        done = summary.get("completed")
        if isinstance(jobs, int) and isinstance(done, int) and jobs != done:
            errors.append("$.summary: completed != jobs")
        failed = summary.get("failed")
        if isinstance(failed, int) and failed != 0:
            errors.append("$.summary.failed: campaign had failed jobs")


def block_parallel_semantic_checks(doc, errors):
    """Constraints of the scaling campaign the type schema can't express."""
    workload = doc.get("workload", {})
    blocks = workload.get("blocks") if isinstance(workload, dict) else None
    for i, run in enumerate(doc.get("runs", [])):
        if not isinstance(run, dict):
            continue
        path = f"$.runs[{i}]"
        w = run.get("workers")
        if isinstance(w, int) and not isinstance(w, bool) and w < 1:
            errors.append(f"{path}.workers: must be >= 1")
        b = run.get("blocks")
        if isinstance(b, int) and not isinstance(b, bool):
            if b <= 0:
                errors.append(f"{path}.blocks: must be positive")
            if isinstance(blocks, int) and b % blocks != 0:
                errors.append(
                    f"{path}.blocks: {b} not a multiple of the plan's "
                    f"{blocks} blocks per pass")
        for key in ("wall_seconds", "cells_per_s", "blocks_per_s",
                    "speedup_vs_sync"):
            v = run.get(key)
            if isinstance(v, NUMBER) and not isinstance(v, bool) and v <= 0:
                errors.append(f"{path}.{key}: must be positive")
        if run.get("exact") is False:
            errors.append(f"{path}: run was not bit-exact with sync")
    summary = doc.get("summary", {})
    if isinstance(summary, dict):
        runs = summary.get("runs")
        exact = summary.get("exact_runs")
        if isinstance(runs, int) and isinstance(exact, int) and runs != exact:
            errors.append("$.summary: exact_runs != runs")
        declared = doc.get("runs")
        if isinstance(runs, int) and isinstance(declared, list) \
                and runs != len(declared):
            errors.append("$.summary.runs: does not match len($.runs)")
        red = summary.get("redundancy")
        if isinstance(red, NUMBER) and not isinstance(red, bool) and red < 1.0:
            errors.append(
                "$.summary.redundancy: streamed/valid ratio cannot be < 1")
    baseline = doc.get("baseline", {})
    if isinstance(baseline, dict) and baseline.get("backend") != "sync_sim":
        errors.append("$.baseline.backend: speedup denominator must be "
                      "the sync_sim sweep")


def semantic_checks(doc, errors):
    """Constraints the type schema can't express."""
    for i, cfg in enumerate(doc.get("configs", [])):
        path = f"$.configs[{i}]"
        if isinstance(cfg, dict):
            if cfg.get("dims") not in (2, 3):
                errors.append(f"{path}.dims: must be 2 or 3")
            if isinstance(cfg.get("radius"), int) and cfg["radius"] < 1:
                errors.append(f"{path}.radius: must be >= 1")
            model = cfg.get("model", {})
            if isinstance(model, dict):
                for key in ("gflops", "gcells", "gbps", "fmax_mhz"):
                    v = model.get(key)
                    if isinstance(v, NUMBER) and not isinstance(v, bool) and v <= 0:
                        errors.append(f"{path}.model.{key}: must be positive")
            sim = cfg.get("simulation", {})
            if isinstance(sim, dict):
                v = sim.get("wall_seconds")
                if isinstance(v, NUMBER) and not isinstance(v, bool) and v < 0:
                    errors.append(f"{path}.simulation.wall_seconds: negative")
    metrics = doc.get("telemetry", {})
    if isinstance(metrics, dict):
        for i, m in enumerate(metrics.get("metrics", [])):
            if isinstance(m, dict) and m.get("kind") not in METRIC_KINDS:
                errors.append(
                    f"$.telemetry.metrics[{i}].kind: {m.get('kind')!r} not in "
                    f"{sorted(METRIC_KINDS)}")


def kernel_dispatch_semantic_checks(doc, errors):
    """Constraints of the dispatch scorecard the type schema can't express.

    Exactness and dispatch are hard requirements everywhere; throughput
    numbers only need to be positive (absolute speedups vary with the
    host and are gated by the offline --full run, not by CI)."""
    shapes = {"star", "box"}
    for i, pt in enumerate(doc.get("envelope", [])):
        if not isinstance(pt, dict):
            continue
        path = f"$.envelope[{i}]"
        if pt.get("shape") not in shapes:
            errors.append(f"{path}.shape: {pt.get('shape')!r} not in "
                          f"{sorted(shapes)}")
        if pt.get("dims") not in (2, 3):
            errors.append(f"{path}.dims: must be 2 or 3")
        if pt.get("exact") is False:
            errors.append(f"{path}: specialized result diverged from the "
                          "interpreter")
        if pt.get("dispatched") is False:
            errors.append(f"{path}: envelope point missed the registry")
        for key in ("generic_mcells_per_s", "specialized_mcells_per_s",
                    "speedup"):
            v = pt.get(key)
            if isinstance(v, NUMBER) and not isinstance(v, bool) and v <= 0:
                errors.append(f"{path}.{key}: must be positive")
    acc = doc.get("acceptance", {})
    if isinstance(acc, dict):
        if acc.get("exact") is False:
            errors.append("$.acceptance: not bit-exact")
        if acc.get("dispatched") is False:
            errors.append("$.acceptance: specialized kernel not dispatched")
    bp = doc.get("blockpar", {})
    if isinstance(bp, dict):
        for i, run in enumerate(bp.get("runs", [])):
            if isinstance(run, dict) and run.get("exact") is False:
                errors.append(f"$.blockpar.runs[{i}]: not bit-exact with the "
                              "sync specialized run")
    summary = doc.get("summary", {})
    if isinstance(summary, dict):
        points = summary.get("points")
        envelope = doc.get("envelope")
        if isinstance(points, int) and isinstance(envelope, list) \
                and points != len(envelope):
            errors.append("$.summary.points: does not match len($.envelope)")
        exact = summary.get("exact_points")
        if isinstance(points, int) and isinstance(exact, int) \
                and exact != points:
            errors.append("$.summary: exact_points != points")


def serving_semantic_checks(doc, errors):
    """Constraints of the serving campaign the type schema can't express."""
    results = doc.get("results", {})
    if isinstance(results, dict):
        submitted = results.get("submitted")
        rejected = results.get("rejected")
        attempted = doc.get("campaign", {}).get("jobs_attempted") \
            if isinstance(doc.get("campaign"), dict) else None
        ints = [submitted, rejected, attempted]
        if all(isinstance(v, int) and not isinstance(v, bool) for v in ints):
            if submitted + rejected != attempted:
                errors.append("$.results: submitted + rejected != "
                              "$.campaign.jobs_attempted")
        outcome = [results.get(k) for k in ("done", "failed", "hung")]
        if all(isinstance(v, int) and not isinstance(v, bool)
               for v in outcome + [submitted]):
            if sum(outcome) != submitted:
                errors.append("$.results: done + failed + hung != submitted "
                              "(a job was lost or duplicated)")
        if results.get("failed") != 0:
            errors.append("$.results.failed: campaign had failed jobs")
        if results.get("hung") != 0:
            errors.append("$.results.hung: a job never reached a terminal "
                          "state")
        done, exact = results.get("done"), results.get("bit_exact")
        if isinstance(done, int) and isinstance(exact, int) and done != exact:
            errors.append("$.results: bit_exact != done")
        sink, sink_exact = results.get("sink_jobs"), results.get("sink_exact")
        if isinstance(sink, int) and isinstance(sink_exact, int) \
                and sink != sink_exact:
            errors.append("$.results: a chunked delivery did not reassemble "
                          "bit-exactly")
        v = results.get("rejected")
        if isinstance(v, int) and not isinstance(v, bool) and v < 1:
            errors.append("$.results.rejected: quota admission was never "
                          "exercised")
    for i, cls in enumerate(doc.get("classes", [])):
        if not isinstance(cls, dict):
            continue
        path = f"$.classes[{i}]"
        if cls.get("name") not in QOS_CLASSES:
            errors.append(f"{path}.name: {cls.get('name')!r} not in "
                          f"{sorted(QOS_CLASSES)}")
        p50, p99, p999 = (cls.get(k) for k in ("p50_ns", "p99_ns", "p999_ns"))
        if all(isinstance(v, int) and not isinstance(v, bool)
               for v in (p50, p99, p999)):
            if not p50 <= p99 <= p999:
                errors.append(f"{path}: percentiles not ordered "
                              f"(p50 {p50} <= p99 {p99} <= p999 {p999})")
    for i, t in enumerate(doc.get("tenants", [])):
        if not isinstance(t, dict):
            continue
        path = f"$.tenants[{i}]"
        if t.get("class") not in QOS_CLASSES:
            errors.append(f"{path}.class: {t.get('class')!r} not in "
                          f"{sorted(QOS_CLASSES)}")
        p50, p99 = t.get("p50_ns"), t.get("p99_ns")
        if all(isinstance(v, int) and not isinstance(v, bool)
               for v in (p50, p99)) and p50 > p99:
            errors.append(f"{path}: p50_ns > p99_ns")
    shards = doc.get("shards", [])
    cluster = doc.get("cluster", {})
    if isinstance(shards, list) and isinstance(cluster, dict):
        declared = cluster.get("shards")
        if isinstance(declared, int) and declared != len(shards):
            errors.append("$.shards: does not match $.cluster.shards")
        for i, sh in enumerate(shards):
            if not isinstance(sh, dict):
                continue
            rate = sh.get("cache_hit_rate")
            busy = sh.get("jobs_completed")
            if isinstance(rate, NUMBER) and not isinstance(rate, bool):
                if not 0.0 <= rate <= 1.0:
                    errors.append(f"$.shards[{i}].cache_hit_rate: outside "
                                  "[0, 1]")
                elif (isinstance(busy, int) and not isinstance(busy, bool)
                      and busy > 0 and rate <= 0.9):
                    errors.append(f"$.shards[{i}].cache_hit_rate: {rate} "
                                  "<= 0.9 (fingerprint affinity broken)")
    balance = doc.get("balance", {})
    if isinstance(balance, dict):
        ratio, bound = balance.get("max_over_mean"), balance.get("bound")
        if all(isinstance(v, NUMBER) and not isinstance(v, bool)
               for v in (ratio, bound)) and ratio > bound:
            errors.append(f"$.balance: max_over_mean {ratio} exceeds "
                          f"bound {bound}")
    if isinstance(doc.get("isolation"), dict) \
            and doc["isolation"].get("passed") is False:
        errors.append("$.isolation.passed: faulty tenants degraded clean "
                      "tenants' p99")
    router = doc.get("router", {})
    if isinstance(router, dict) and isinstance(cluster, dict) \
            and isinstance(cluster.get("shards"), int) \
            and cluster["shards"] > 1:
        for key in ("shard_drains", "shard_reloads"):
            v = router.get(key)
            if isinstance(v, int) and not isinstance(v, bool) and v < 1:
                errors.append(f"$.router.{key}: drain/reload never exercised")
    pool = doc.get("pool", {})
    if isinstance(pool, dict) and pool.get("outstanding") != 0:
        errors.append("$.pool.outstanding: leaked buffer-pool leases")
    probe = doc.get("scale_probe", {})
    if isinstance(probe, dict) and probe.get("speedup_gate_checked") is True \
            and probe.get("speedup_gate_ok") is False:
        errors.append("$.scale_probe: gate checked on a big-enough host "
                      "but the cluster missed 3/8-linear speedup")


def chaos_semantic_checks(doc, errors):
    """Constraints of the chaos campaign the type schema can't express."""
    results = doc.get("results", {})
    campaign = doc.get("campaign", {})
    if isinstance(results, dict) and isinstance(campaign, dict):
        counts = [results.get(k) for k in
                  ("done", "cancelled", "deadline_exceeded", "failed")]
        jobs = campaign.get("jobs")
        if all(isinstance(c, int) and not isinstance(c, bool)
               for c in counts) and isinstance(jobs, int):
            if sum(counts) != jobs:
                errors.append(
                    "$.results: outcome counts do not sum to $.campaign.jobs")
        if results.get("failed") != 0:
            errors.append("$.results.failed: campaign had unexpected failures")
        if results.get("hung") != 0:
            errors.append("$.results.hung: a job never reached a terminal "
                          "state")
        done = results.get("done")
        exact = results.get("bit_exact")
        if isinstance(done, int) and isinstance(exact, int) and done != exact:
            errors.append("$.results: bit_exact != done (a surviving job "
                          "produced a wrong grid)")
        for key in ("cancelled", "deadline_exceeded"):
            v = results.get(key)
            if isinstance(v, int) and not isinstance(v, bool) and v < 1:
                errors.append(f"$.results.{key}: campaign never exercised it")
    lat = doc.get("cancel_latency_ns", {})
    if isinstance(lat, dict):
        p50, p99 = lat.get("p50"), lat.get("p99")
        if (isinstance(p50, int) and isinstance(p99, int)
                and not isinstance(p50, bool) and not isinstance(p99, bool)
                and p50 > p99):
            errors.append("$.cancel_latency_ns: p50 > p99")
        count = lat.get("count")
        if isinstance(count, int) and not isinstance(count, bool) and count < 1:
            errors.append("$.cancel_latency_ns.count: no latencies recorded")
    breaker = doc.get("breaker", {})
    if isinstance(breaker, dict):
        trips = breaker.get("trips")
        if isinstance(trips, int) and not isinstance(trips, bool) and trips < 1:
            errors.append("$.breaker.trips: the breaker never tripped")
        if breaker.get("recovered") is False:
            errors.append("$.breaker.recovered: half-open probe never closed "
                          "the breaker")
    pool = doc.get("pool", {})
    if isinstance(pool, dict) and pool.get("outstanding") != 0:
        errors.append("$.pool.outstanding: leaked buffer-pool leases")


def program_semantic_checks(doc, errors):
    """Constraints of the program campaign the type schema can't express.

    Exactness is a hard requirement everywhere: every campaign's fields
    must match the multi-field golden model (result and reassembled
    chunk stream alike), repeated submissions must route to one shard
    and hit the per-node plan cache, node accounting must close
    (nodes_scheduled == nodes * steps), and the pool must end clean."""
    for i, c in enumerate(doc.get("campaigns", [])):
        if not isinstance(c, dict):
            continue
        path = f"$.campaigns[{i}]"
        if c.get("dims") not in (2, 3):
            errors.append(f"{path}.dims: must be 2 or 3")
        if c.get("exact") is not True:
            errors.append(f"{path}.exact: fields diverged from the golden "
                          "model")
        if c.get("chunks_exact") is not True:
            errors.append(f"{path}.chunks_exact: chunk stream did not "
                          "reassemble to the golden model")
        if c.get("second_run_cache_hit") is not True:
            errors.append(f"{path}.second_run_cache_hit: repeated program "
                          "missed the plan cache")
        if c.get("route_stable") is not True:
            errors.append(f"{path}.route_stable: program fingerprint "
                          "affinity broke")
        nodes, steps = c.get("nodes"), c.get("steps")
        scheduled = c.get("nodes_scheduled")
        if (isinstance(nodes, int) and isinstance(steps, int)
                and isinstance(scheduled, int)
                and not isinstance(scheduled, bool)
                and scheduled != nodes * steps):
            errors.append(f"{path}.nodes_scheduled: expected nodes * steps "
                          f"= {nodes * steps}, got {scheduled}")
        chunks = c.get("chunks_delivered")
        if isinstance(chunks, int) and not isinstance(chunks, bool) \
                and chunks < 1:
            errors.append(f"{path}.chunks_delivered: nothing streamed")
        mcups = c.get("mcups")
        if isinstance(mcups, NUMBER) and not isinstance(mcups, bool) \
                and mcups <= 0:
            errors.append(f"{path}.mcups: must be positive")
    summary = doc.get("summary", {})
    if isinstance(summary, dict):
        if summary.get("all_exact") is not True:
            errors.append("$.summary.all_exact: a campaign self-check failed")
        if summary.get("leaked_leases") != 0:
            errors.append("$.summary.leaked_leases: leaked buffer-pool "
                          "leases")
        campaigns = summary.get("campaigns")
        if isinstance(campaigns, int) and not isinstance(campaigns, bool) \
                and campaigns < 2:
            errors.append("$.summary.campaigns: both flagship campaigns "
                          "must run")


def autotune_semantic_checks(doc, errors):
    """Constraints of the autotune scorecard the type schema can't express.

    Exactness is a hard requirement everywhere (block geometry is a
    performance-only knob, so a tuned plan that changes bits is a bug).
    The paper-default geometry is always a search candidate, so gains
    must be positive and the envelope median must not regress; the 1.15x
    acceptance-gain gate only applies to the offline --full artifact
    (CI-small grids don't reproduce acceptance-scale cache pressure)."""
    shapes = {"star", "box"}
    for i, pt in enumerate(doc.get("envelope", [])):
        if not isinstance(pt, dict):
            continue
        path = f"$.envelope[{i}]"
        if pt.get("shape") not in shapes:
            errors.append(f"{path}.shape: {pt.get('shape')!r} not in "
                          f"{sorted(shapes)}")
        if pt.get("dims") not in (2, 3):
            errors.append(f"{path}.dims: must be 2 or 3")
        if pt.get("exact") is False:
            errors.append(f"{path}: tuned result diverged from the "
                          "paper-default geometry")
        for key in ("default_mcells_per_s", "tuned_mcells_per_s", "gain"):
            v = pt.get(key)
            if isinstance(v, NUMBER) and not isinstance(v, bool) and v <= 0:
                errors.append(f"{path}.{key}: must be positive")
        probed = pt.get("candidates_probed")
        if isinstance(probed, int) and not isinstance(probed, bool) \
                and probed < 1:
            errors.append(f"{path}.candidates_probed: the search must probe "
                          "at least the paper-default candidate")
    acc = doc.get("acceptance", {})
    full = doc.get("mode") == "full"
    if isinstance(acc, dict):
        if acc.get("exact") is False:
            errors.append("$.acceptance: tuned result not bit-exact")
        gain = acc.get("gain")
        if isinstance(gain, NUMBER) and not isinstance(gain, bool):
            if gain <= 0:
                errors.append("$.acceptance.gain: must be positive")
            elif full and gain < 1.15:
                errors.append(f"$.acceptance.gain: {gain} < 1.15 on the "
                              "--full artifact")
    summary = doc.get("summary", {})
    if isinstance(summary, dict):
        points = summary.get("points")
        envelope = doc.get("envelope")
        if isinstance(points, int) and isinstance(envelope, list) \
                and points != len(envelope):
            errors.append("$.summary.points: does not match len($.envelope)")
        exact = summary.get("exact_points")
        if isinstance(points, int) and isinstance(exact, int) \
                and exact != points:
            errors.append("$.summary: exact_points != points")
        med = summary.get("median_gain")
        if isinstance(med, NUMBER) and not isinstance(med, bool) and med < 1.0:
            errors.append(f"$.summary.median_gain: {med} < 1.0 (the search "
                          "regressed the envelope median)")


def host_block_checks(doc, errors):
    """schema_version >= 2 artifacts must carry the host fingerprint."""
    version = doc.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool) \
            or version < 2:
        return
    if "host" not in doc:
        errors.append("$.host: missing (required for schema_version >= 2)")
        return
    check(doc["host"], HOST_SCHEMA, "$.host", errors)
    host = doc["host"]
    if isinstance(host, dict):
        for key in ("cores", "l1_kib", "l2_kib", "llc_kib"):
            v = host.get(key)
            if isinstance(v, int) and not isinstance(v, bool) and v < 1:
                errors.append(f"$.host.{key}: must be >= 1")
        fp = host.get("fingerprint")
        if isinstance(fp, str) and not fp:
            errors.append("$.host.fingerprint: empty")


def validate_file(name):
    try:
        with open(name, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{name}: FAIL: {exc}")
        return False
    errors = []
    is_chaos = isinstance(doc, dict) and doc.get("bench") == "chaos_campaign"
    is_serving = (isinstance(doc, dict)
                  and doc.get("bench") == "serving_campaign")
    is_kernel_dispatch = (isinstance(doc, dict)
                          and doc.get("bench") == "kernel_dispatch")
    is_autotune = isinstance(doc, dict) and doc.get("bench") == "autotune"
    is_program = (isinstance(doc, dict)
                  and doc.get("bench") == "program_campaign")
    is_engine = (not is_chaos and not is_serving and not is_kernel_dispatch
                 and not is_autotune and not is_program
                 and isinstance(doc, dict) and "jobs" in doc)
    is_block_parallel = (not is_chaos and not is_serving
                         and not is_kernel_dispatch and not is_autotune
                         and not is_program
                         and isinstance(doc, dict) and "runs" in doc)
    if isinstance(doc, dict):
        host_block_checks(doc, errors)
    if is_program:
        check(doc, PROGRAM_SCHEMA, "$", errors)
        program_semantic_checks(doc, errors)
    elif is_autotune:
        check(doc, AUTOTUNE_SCHEMA, "$", errors)
        autotune_semantic_checks(doc, errors)
    elif is_serving:
        check(doc, SERVING_SCHEMA, "$", errors)
        serving_semantic_checks(doc, errors)
    elif is_kernel_dispatch:
        check(doc, KERNEL_DISPATCH_SCHEMA, "$", errors)
        kernel_dispatch_semantic_checks(doc, errors)
    elif is_chaos:
        check(doc, CHAOS_SCHEMA, "$", errors)
        chaos_semantic_checks(doc, errors)
    elif is_engine:
        check(doc, ENGINE_SCHEMA, "$", errors)
        engine_semantic_checks(doc, errors)
    elif is_block_parallel:
        check(doc, BLOCK_PARALLEL_SCHEMA, "$", errors)
        block_parallel_semantic_checks(doc, errors)
    else:
        check(doc, SCHEMA, "$", errors)
        semantic_checks(doc, errors)
    if errors:
        print(f"{name}: FAIL ({len(errors)} schema violations)")
        for e in errors:
            print(f"  {e}")
        return False
    if is_program:
        s = doc["summary"]
        names = ", ".join(c["name"] for c in doc["campaigns"])
        print(f"{name}: OK ({s['campaigns']} program campaigns [{names}], "
              f"all exact, 0 leaked leases)")
    elif is_autotune:
        s = doc["summary"]
        print(f"{name}: OK ({s['points']} envelope points, median gain "
              f"{s['median_gain']:.2f}x, acceptance "
              f"{doc['acceptance']['gain']:.2f}x)")
    elif is_serving:
        r = doc["results"]
        print(f"{name}: OK ({doc['campaign']['jobs_attempted']} attempted: "
              f"{r['done']} done, {r['rejected']} quota-rejected, "
              f"{r['chunks_delivered']} chunks streamed)")
    elif is_kernel_dispatch:
        s = doc["summary"]
        print(f"{name}: OK ({s['points']} envelope points, median speedup "
              f"{s['median_speedup']:.2f}x, acceptance "
              f"{doc['acceptance']['speedup']:.2f}x)")
    elif is_chaos:
        r = doc["results"]
        print(f"{name}: OK ({doc['campaign']['jobs']} jobs: "
              f"{r['done']} done, {r['cancelled']} cancelled, "
              f"{r['deadline_exceeded']} expired)")
    elif is_engine:
        rate = doc["summary"]["cache_hit_rate"]
        print(f"{name}: OK ({len(doc['jobs'])} jobs, "
              f"cache hit rate {rate:.3f})")
    elif is_block_parallel:
        best = doc["summary"]["best_speedup"]
        print(f"{name}: OK ({len(doc['runs'])} runs, "
              f"best speedup {best:.2f}x)")
    else:
        print(f"{name}: OK ({len(doc['configs'])} configs, "
              f"{len(doc['telemetry']['metrics'])} metrics)")
    return True


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    ok = all([validate_file(name) for name in argv[1:]])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
