// 3D heat diffusion through the OpenCL-style host API -- the flow a user of
// the paper's artifact would run on a real board: discover the device,
// build the kernel with -D knobs, transfer buffers, launch, profile.
#include <cstdio>
#include <string>
#include <vector>

#include "ocl/opencl_shim.hpp"
#include "stencil/characteristics.hpp"

using namespace fpga_stencil;

int main() {
  const ocl::Platform platform = ocl::Platform::intel_fpga_sdk();
  const ocl::Context ctx(platform.device_by_name("Arria 10"));
  std::printf("device: %s\n", ctx.device().name().c_str());

  // "Offline compile" a radius-2 3D kernel. An oversubscribed design would
  // throw ocl::BuildError here, like a failed place-and-route.
  const ocl::Program program = ocl::Program::build(
      ctx, "-DDIM=3 -DRAD=2 -DBSIZE_X=32 -DBSIZE_Y=32 -DPAR_VEC=8 "
           "-DPAR_TIME=2");
  std::printf("%s\n", program.report().summary().c_str());

  // A hot cube in a cold room.
  const std::int64_t n = 64;
  const std::size_t bytes = std::size_t(n * n * n) * sizeof(float);
  std::vector<float> host(std::size_t(n * n * n), 0.0f);
  for (std::int64_t z = 24; z < 40; ++z) {
    for (std::int64_t y = 24; y < 40; ++y) {
      for (std::int64_t x = 24; x < 40; ++x) {
        host[std::size_t((z * n + y) * n + x)] = 100.0f;
      }
    }
  }

  const StarStencil stencil = StarStencil::make_shared_coefficient(3, 2);
  ocl::CommandQueue queue(ctx);
  ocl::Buffer in(ctx, bytes), out(ctx, bytes);
  queue.enqueue_write_buffer(in, host.data(), bytes);

  const int iterations = 20;
  const ocl::Event ev =
      queue.enqueue_stencil_3d(program, stencil, in, out, n, n, n, iterations);
  queue.finish();
  queue.enqueue_read_buffer(out, host.data(), bytes);

  // Temperature along the center line: should be a smooth bump.
  std::printf("\ncenter-line temperature after %d steps:\n", iterations);
  for (std::int64_t x = 0; x < n; x += 4) {
    const float v = host[std::size_t((32 * n + 32) * n + x)];
    std::printf("  x=%2lld %6.2f |%s\n", (long long)x, v,
                std::string(std::size_t(v / 2), '#').c_str());
  }

  const double cells = double(n) * n * n * iterations;
  const StencilCharacteristics sc = stencil_characteristics(3, 2);
  std::printf("\nmodeled FPGA kernel time: %.3f ms (%.2f GCell/s, %.1f "
              "GFLOP/s at fmax %.1f MHz)\n",
              ev.device_ms(), cells / ev.device_seconds / 1e9,
              cells / ev.device_seconds / 1e9 * double(sc.flop_per_cell),
              program.report().fmax_mhz);
  std::printf("host simulation time: %.1f ms\n", ev.host_seconds * 1e3);
  return 0;
}
