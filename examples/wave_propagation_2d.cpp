// Seismic-flavored scenario: high-order smoothing of a 2D wavefield.
//
// The paper motivates high-order stencils with seismic and wave
// propagation simulation. This example runs an 8th-order-accurate
// (radius 4) smoothing operator over a field with two point sources and
// renders the field as ASCII frames, comparing the FPGA accelerator
// simulator against the YASK-like CPU baseline on the same input.
#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/stencil_accelerator.hpp"
#include "cpu/yask_like.hpp"
#include "grid/grid_compare.hpp"
#include "grid/grid_io.hpp"
#include "stencil/workloads.hpp"

using namespace fpga_stencil;

namespace {

void render_ascii(const Grid2D<float>& g, std::int64_t step_x,
                  std::int64_t step_y) {
  static const char* kShades = " .:-=+*#%@";
  for (std::int64_t y = 0; y < g.ny(); y += step_y) {
    for (std::int64_t x = 0; x < g.nx(); x += step_x) {
      const float v = g.at(x, y);
      const int shade =
          std::min(9, std::max(0, static_cast<int>(v * 10.0f)));
      std::putchar(kShades[shade]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main() {
  const int radius = 4;  // 8th-order accurate in the paper's naming footnote
  const StarStencil stencil = StarStencil::make_shared_coefficient(2, radius);

  const std::int64_t nx = 240, ny = 120;
  Grid2D<float> field(nx, ny, 0.0f);
  // Two Gaussian sources of different strength (seismic-style shot points).
  add_gaussian(field, 60.0, 60.0, 2.0, 60.0f);
  add_gaussian(field, 180.0, 40.0, 2.0, 40.0f);

  Grid2D<float> cpu_field = field;

  AcceleratorConfig cfg;
  cfg.dims = 2;
  cfg.radius = radius;
  cfg.bsize_x = 128;
  cfg.parvec = 8;
  cfg.partime = 3;
  StencilAccelerator accelerator(stencil, cfg);
  YaskLikeStencil2D cpu(stencil);

  std::printf("wavefield smoothing, radius %d, %lldx%lld grid, FPGA "
              "pipeline (%s)\n\n",
              radius, (long long)nx, (long long)ny, cfg.describe().c_str());

  const int frames = 4;
  const int steps_per_frame = 15;
  for (int f = 0; f < frames; ++f) {
    std::printf("t = %d:\n", f * steps_per_frame);
    render_ascii(field, 4, 4);
    std::putchar('\n');
    accelerator.run(field, steps_per_frame);
    cpu.run(cpu_field, steps_per_frame, CpuBlockSize{nx, 16, 1});
  }

  // Energy must spread and decay at the peak, never go negative, and the
  // two executors must agree bit-for-bit.
  const CompareResult cmp = compare_exact(field, cpu_field);
  const FieldStats stats = field_stats(field);
  std::printf("after %d steps: peak %.4f (started 60), field sum %.2f, "
              "FPGA-vs-CPU: %s\n",
              frames * steps_per_frame, stats.peak, stats.total,
              cmp.summary().c_str());

  // Snapshot the final wavefield as a viewable PGM image.
  std::ofstream pgm("wavefield_final.pgm");
  write_pgm(field, pgm, 0.0f, stats.peak);
  std::printf("final wavefield written to wavefield_final.pgm\n");
  return cmp.identical() && stats.peak < 60.0f ? 0 : 1;
}
