// Box-stencil demo: image blur on the generalized tap engine.
//
// The paper's intro motivates stencils with image processing; this example
// blurs a synthetic "image" with a radius-2 box kernel (25 taps) running on
// the same deep pipeline as the paper's star stencils, compares the FPGA
// simulator against the YASK-like CPU baseline, and emits the OpenCL-C
// source a real board would compile.
#include <cstdio>
#include <fstream>

#include "codegen/kernel_generator.hpp"
#include "core/stencil_accelerator.hpp"
#include "cpu/yask_like.hpp"
#include "grid/grid_compare.hpp"
#include "stencil/box_stencil.hpp"

using namespace fpga_stencil;

namespace {

/// A synthetic test card: bars, a gradient, and speckle noise.
Grid2D<float> make_test_image(std::int64_t nx, std::int64_t ny) {
  Grid2D<float> img(nx, ny);
  SplitMix64 rng(7);
  for (std::int64_t y = 0; y < ny; ++y) {
    for (std::int64_t x = 0; x < nx; ++x) {
      float v = float(x) / float(nx);              // gradient
      if ((x / 16) % 2 == 0 && y < ny / 2) v = 1.0f - v;  // bars
      if (rng.next_below(37) == 0) v = 1.0f;       // speckle
      img.at(x, y) = v;
    }
  }
  return img;
}

void render(const Grid2D<float>& g, std::int64_t sx, std::int64_t sy) {
  static const char* kShades = " .:-=+*#%@";
  for (std::int64_t y = 0; y < g.ny(); y += sy) {
    for (std::int64_t x = 0; x < g.nx(); x += sx) {
      const int s = std::min(
          9, std::max(0, static_cast<int>(g.at(x, y) * 9.0f + 0.5f)));
      std::putchar(kShades[s]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main() {
  const std::int64_t nx = 192, ny = 96;
  const TapSet blur = make_box_stencil(2, 2, /*seed=*/5);

  AcceleratorConfig cfg;
  cfg.dims = 2;
  cfg.radius = 2;
  cfg.bsize_x = 96;
  cfg.parvec = 4;
  cfg.partime = 2;
  std::printf("box blur (%zu taps) on the deep pipeline: %s\n\n",
              blur.size(), cfg.describe().c_str());

  Grid2D<float> image = make_test_image(nx, ny);
  Grid2D<float> cpu_image = image;

  std::printf("input:\n");
  render(image, 2, 4);

  StencilAccelerator accel(blur, cfg);
  accel.run(image, 3);
  YaskLikeStencil2D cpu(blur);
  cpu.run(cpu_image, 3, CpuBlockSize{nx, 16, 1});

  std::printf("\nblurred (3 passes of the pipeline):\n");
  render(image, 2, 4);

  const CompareResult cmp = compare_exact(image, cpu_image);
  std::printf("\nFPGA pipeline vs CPU baseline: %s\n", cmp.summary().c_str());

  // Emit the kernel a real flow would hand to aoc.
  const std::string src = generate_tap_kernel_source(blur, {cfg, true});
  const SourceMetrics m = analyze_source(src);
  std::ofstream("box_blur_kernel.cl") << src;
  std::printf("generated box_blur_kernel.cl: %lld lines, %lld clamping "
              "selects, delimiters %s\n",
              (long long)m.lines, (long long)m.selects,
              m.balanced ? "balanced" : "UNBALANCED");
  return cmp.identical() && m.balanced ? 0 : 1;
}
