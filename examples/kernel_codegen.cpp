// Kernel code generation: emits the OpenCL-C source the paper's code
// generator would hand to `aoc`, for a configuration given on the command
// line (defaults to the paper's 3D radius-3 setup, scaled down), and prints
// structural metrics of the generated boundary-condition code.
//
// usage: kernel_codegen [dims radius bsize_x bsize_y parvec partime]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "codegen/kernel_generator.hpp"

using namespace fpga_stencil;

int main(int argc, char** argv) {
  AcceleratorConfig cfg;
  cfg.dims = 3;
  cfg.radius = 3;
  cfg.bsize_x = 64;
  cfg.bsize_y = 32;
  cfg.parvec = 4;
  cfg.partime = 2;
  if (argc == 7) {
    cfg.dims = std::atoi(argv[1]);
    cfg.radius = std::atoi(argv[2]);
    cfg.bsize_x = std::atoll(argv[3]);
    cfg.bsize_y = std::atoll(argv[4]);
    cfg.parvec = std::atoi(argv[5]);
    cfg.partime = std::atoi(argv[6]);
  } else if (argc != 1) {
    std::fprintf(stderr,
                 "usage: %s [dims radius bsize_x bsize_y parvec partime]\n",
                 argv[0]);
    return 2;
  }
  cfg.validate();

  const std::string source = generate_kernel_source({cfg, true});
  std::cout << source;

  const SourceMetrics m = analyze_source(source);
  std::fprintf(stderr,
               "\n// metrics: %lld lines, %lld clamping selects, %lld "
               "accumulations,\n// %lld unroll pragmas, delimiters %s\n"
               "// (the boundary-condition generator emitted %d selects per "
               "lane: 2*dims*rad)\n",
               (long long)m.lines, (long long)m.selects,
               (long long)m.accumulations, (long long)m.unroll_pragmas,
               m.balanced ? "balanced" : "UNBALANCED",
               2 * cfg.dims * cfg.radius);
  return m.balanced ? 0 : 1;
}
