// The complete host-program flow of the paper's artifact, end to end:
// device discovery -> offline kernel build (with a deliberate failure to
// show the fit check) -> buffer transfers -> tuned launch -> profiling ->
// performance-model cross-check. This is the example to read to understand
// how the pieces compose.
#include <cstdio>
#include <sstream>

#include "grid/grid_compare.hpp"
#include "model/performance_model.hpp"
#include "ocl/opencl_shim.hpp"
#include "stencil/reference.hpp"
#include "tune/tuner.hpp"

using namespace fpga_stencil;

int main() {
  // --- discovery ---
  const ocl::Platform platform = ocl::Platform::intel_fpga_sdk();
  std::printf("platform devices:\n");
  for (const ocl::Device& d : platform.devices()) {
    std::printf("  %-22s %4d DSPs  %5d M20Ks  %5.1f GB/s\n",
                d.name().c_str(), d.spec().dsps, d.spec().m20k_blocks,
                d.spec().peak_bw_gbps);
  }
  const ocl::Context ctx(platform.device_by_name("Arria 10"));

  // --- a build that fails the fit check, like a failed place-and-route ---
  try {
    ocl::Program::build(ctx, "-DDIM=2 -DRAD=1 -DBSIZE_X=4096 -DPAR_VEC=16 "
                             "-DPAR_TIME=32");
  } catch (const ocl::BuildError& e) {
    std::printf("\nexpected build failure: %s\n", e.what());
  }

  // --- tune, then build the winner ---
  TunerOptions opts;
  opts.dims = 2;
  opts.radius = 2;
  opts.nx = 480;
  opts.ny = 200;
  opts.bsize_x_candidates = {128};
  opts.max_parvec = 8;
  opts.max_partime = 8;
  const TunedConfig tuned = best_config(ctx.device().spec(), opts);
  std::ostringstream build;
  build << "-DDIM=2 -DRAD=2 -DBSIZE_X=" << tuned.config.bsize_x
        << " -DPAR_VEC=" << tuned.config.parvec
        << " -DPAR_TIME=" << tuned.config.partime;
  std::printf("\ntuned configuration: %s\nbuild options: %s\n",
              tuned.config.describe().c_str(), build.str().c_str());
  const ocl::Program program = ocl::Program::build(ctx, build.str());
  std::printf("\naoc-style report:\n%s", program.report().summary().c_str());

  // --- run ---
  const std::int64_t nx = 480, ny = 200;
  const int iterations = 16;
  const std::size_t bytes = std::size_t(nx * ny) * sizeof(float);
  const StarStencil stencil = StarStencil::make_benchmark(2, 2);
  Grid2D<float> grid(nx, ny);
  grid.fill_random(7);
  Grid2D<float> want = grid;
  reference_run(stencil, want, iterations);

  ocl::CommandQueue queue(ctx);
  ocl::Buffer in(ctx, bytes), out(ctx, bytes);
  queue.enqueue_write_buffer(in, grid.data(), bytes);
  const ocl::Event ev = queue.enqueue_stencil_2d(program, stencil, in, out,
                                                 nx, ny, iterations);
  queue.finish();
  Grid2D<float> got(nx, ny);
  queue.enqueue_read_buffer(out, got.data(), bytes);

  const CompareResult cmp = compare_exact(got, want);
  std::printf("\nverification vs naive reference: %s\n",
              cmp.summary().c_str());

  // --- profiling vs model ---
  const PerformanceEstimate model = estimate_performance(
      program.config(), ctx.device().spec(), program.report().fmax_mhz, nx,
      ny);
  const double cells = double(nx) * ny * iterations;
  std::printf("profiled (modeled) kernel time: %.3f ms -> %.3f GCell/s\n",
              ev.device_ms(), cells / ev.device_seconds / 1e9);
  std::printf("performance model says:         %.3f GCell/s (pipeline "
              "efficiency %.0f%%)\n",
              model.measured_gcells, model.pipeline_efficiency * 100.0);
  return cmp.identical() ? 0 : 1;
}
