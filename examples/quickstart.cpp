// Quickstart: run a high-order stencil through the FPGA accelerator
// simulator and verify it against the naive reference.
//
//   1. define a star stencil (radius 3, 2D),
//   2. pick performance knobs (block size, vector width, temporal depth),
//   3. run, 4. verify, 5. look at the streamed-vs-valid statistics.
#include <cstdio>

#include "core/stencil_accelerator.hpp"
#include "grid/grid_compare.hpp"
#include "stencil/reference.hpp"

using namespace fpga_stencil;

int main() {
  // 1. A 2D star stencil of radius 3 with distinct per-neighbor
  //    coefficients (the paper's worst case), normalized so iteration is
  //    numerically stable.
  const StarStencil stencil = StarStencil::make_benchmark(/*dims=*/2,
                                                          /*radius=*/3);

  // 2. Performance knobs: 1.5D blocking with 256-cell-wide blocks, 4 cells
  //    per cycle, 4 chained PEs (4 time steps per pass over the grid).
  AcceleratorConfig cfg;
  cfg.dims = 2;
  cfg.radius = 3;
  cfg.bsize_x = 256;
  cfg.parvec = 4;
  cfg.partime = 4;
  cfg.validate();
  std::printf("configuration: %s\n", cfg.describe().c_str());
  std::printf("  halo %lld cells/side, compute block %lld, shift register "
              "%lld cells\n",
              (long long)cfg.halo(), (long long)cfg.csize_x(),
              (long long)cfg.shift_register_cells());

  // 3. A 600x400 grid, 12 time steps.
  Grid2D<float> grid(600, 400);
  grid.fill_random(/*seed=*/2018);
  Grid2D<float> reference = grid;

  StencilAccelerator accelerator(stencil, cfg);
  const RunStats stats = accelerator.run(grid, /*iterations=*/12);

  // 4. Verify bit-exactness against the naive implementation.
  reference_run(stencil, reference, 12);
  const CompareResult cmp = compare_exact(grid, reference);
  std::printf("verification: %s\n", cmp.summary().c_str());

  // 5. What the architecture did.
  std::printf("passes: %d (partime %d time steps each)\n", stats.passes,
              cfg.partime);
  std::printf("cells streamed: %lld, cells written: %lld (redundancy "
              "%.3fx from overlapped halos)\n",
              (long long)stats.cells_streamed,
              (long long)stats.cells_written, stats.redundancy());
  std::printf("pipeline cycles (zero-stall): %lld\n",
              (long long)stats.vectors_processed);
  return cmp.identical() ? 0 : 1;
}
