// Design-space exploration: what the paper's Section V.A tuning flow looks
// like as a library call. For each radius, enumerate every feasible
// (bsize, parvec, partime) on the Arria 10, rank by predicted throughput,
// and print the podium next to the configuration the paper shipped.
#include <cstdio>
#include <iostream>

#include "common/format.hpp"
#include "common/table.hpp"
#include "harness/experiments.hpp"
#include "tune/tuner.hpp"

using namespace fpga_stencil;

int main() {
  const DeviceSpec device = arria10_gx1150();
  std::printf("design-space exploration on %s (%d DSPs, %d M20Ks)\n\n",
              device.name.c_str(), device.dsps, device.m20k_blocks);

  for (int dims : {2, 3}) {
    for (int rad = 1; rad <= 4; ++rad) {
      TunerOptions opts;
      opts.dims = dims;
      opts.radius = rad;
      if (dims == 2) {
        opts.nx = opts.ny = 15712;
        opts.nz = 1;
      } else {
        opts.nx = 696;
        opts.ny = 728;
        opts.nz = 696;
      }
      const auto configs = enumerate_configs(device, opts);
      std::printf("%dD radius %d: %zu feasible configurations, top 3:\n",
                  dims, rad, configs.size());
      TextTable t({"rank", "config", "aligned", "pred GB/s", "fmax",
                   "DSP", "BRAM blk"});
      for (std::size_t i = 0; i < configs.size() && i < 3; ++i) {
        const TunedConfig& c = configs[i];
        t.add_row({std::to_string(i + 1), c.config.describe(),
                   c.meets_alignment ? "yes" : "no",
                   format_fixed(c.perf.measured_gbps, 1),
                   format_fixed(c.fmax_mhz, 1),
                   format_percent(c.usage.dsp_fraction),
                   format_percent(c.usage.bram_block_fraction)});
      }
      const AcceleratorConfig p = paper_config(dims, rad);
      t.add_row({"paper", p.describe(), p.meets_alignment_rule() ? "yes" : "no",
                 "-", "-", "-", "-"});
      t.render(std::cout);
      std::printf("\n");
    }
  }

  std::printf("heuristic check (Section V.A): scaling the first-order 3D "
              "config by 1/radius:\n");
  const AcceleratorConfig first = paper_config(3, 1);
  for (int rad = 2; rad <= 4; ++rad) {
    const AcceleratorConfig scaled = scale_first_order_config(first, rad);
    const AcceleratorConfig actual = paper_config(3, rad);
    std::printf("  radius %d: heuristic partime %d, paper shipped %d %s\n",
                rad, scaled.partime, actual.partime,
                scaled.partime == actual.partime ? "(match)" : "(differs)");
  }
  return 0;
}
