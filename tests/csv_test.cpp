// Tests for the CSV emitters.
#include <gtest/gtest.h>

#include <sstream>

#include <algorithm>

#include "harness/csv.hpp"

namespace fpga_stencil {
namespace {

std::size_t count_lines(const std::string& s) {
  return std::size_t(std::count(s.begin(), s.end(), '\n'));
}

TEST(Csv, ComparisonTableShape) {
  std::ostringstream os;
  write_comparison_csv(comparison_table(3), os);
  const std::string out = os.str();
  EXPECT_EQ(count_lines(out), 1u + 24u);  // header + 6 devices x 4 radii
  EXPECT_EQ(out.rfind("device,radius,gflops,gcells,power_w,gflops_per_w,"
                      "roofline,extrapolated\n",
                      0),
            0u);
  // Extrapolated rows flagged.
  EXPECT_NE(out.find("\"Tesla P100\",1,"), std::string::npos);
  EXPECT_NE(out.find(",1\n"), std::string::npos);
  // Quoted device names survive commas-free round trips.
  EXPECT_NE(out.find("\"Arria 10 GX 1150\""), std::string::npos);
}

TEST(Csv, Table3Shape) {
  std::ostringstream os;
  write_table3_csv(arria10_gx1150(), os);
  const std::string out = os.str();
  EXPECT_EQ(count_lines(out), 1u + 8u);
  // Every data line has the full column count.
  std::istringstream is(out);
  std::string line;
  std::getline(is, line);
  const auto cols = std::count(line.begin(), line.end(), ',') + 1;
  while (std::getline(is, line)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ',') + 1, cols);
  }
}

TEST(Csv, NumbersParseBack) {
  std::ostringstream os;
  write_table3_csv(arria10_gx1150(), os);
  std::istringstream is(os.str());
  std::string header, first;
  std::getline(is, header);
  std::getline(is, first);
  // dims,radius,bsize_x,...
  std::istringstream row(first);
  std::string cell;
  std::getline(row, cell, ',');
  EXPECT_EQ(std::stoi(cell), 2);
  std::getline(row, cell, ',');
  EXPECT_EQ(std::stoi(cell), 1);
  std::getline(row, cell, ',');
  EXPECT_EQ(std::stoll(cell), 4096);
}

}  // namespace
}  // namespace fpga_stencil
