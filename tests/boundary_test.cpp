// Boundary-condition exactness sweep (docs/PROGRAMS.md): every
// BoundaryCondition (clamp, periodic, reflective, dirichlet) x star/box
// x 2D/3D x radius 1-4 must be bit-identical between the streaming
// accelerator and the naive reference model -- on the synchronous
// simulator AND the block-parallel backend, with partial edge blocks and
// a partial temporal tail, so corners, edges, and halo exchanges all see
// every boundary rule. A few analytic single-tap tests pin the absolute
// semantics (what "mirror", "wrap", and "the dirichlet value" mean), not
// just agreement between two implementations.
#include <gtest/gtest.h>

#include "core/block_parallel_accelerator.hpp"
#include "core/stencil_accelerator.hpp"
#include "engine/plan_cache.hpp"
#include "grid/grid_compare.hpp"
#include "stencil/box_stencil.hpp"
#include "stencil/reference.hpp"
#include "stencil/star_stencil.hpp"

namespace fpga_stencil {
namespace {

BoundaryCondition boundary_case(int i) {
  switch (i) {
    case 0: return BoundaryCondition::clamp();
    case 1: return BoundaryCondition::periodic();
    case 2: return BoundaryCondition::reflective();
    default: return BoundaryCondition::dirichlet(0.75f);
  }
}

/// Small blocks: several blocks per dimension with partial edge blocks,
/// so boundary handling is exercised per-block, not just per-grid.
AcceleratorConfig sweep_config(int dims, int radius) {
  AcceleratorConfig cfg;
  cfg.dims = dims;
  cfg.radius = radius;
  cfg.parvec = 2;
  cfg.partime = 2;
  cfg.bsize_x = 2 * cfg.partime * radius + 4;
  cfg.bsize_y = dims == 3 ? cfg.bsize_x : 1;
  cfg.validate();
  return cfg;
}

class BoundarySweep
    : public ::testing::TestWithParam<std::tuple<int, int, bool, int>> {};

TEST_P(BoundarySweep, AcceleratorMatchesReferenceBitExact) {
  const auto [dims, radius, box, bc_index] = GetParam();
  const BoundaryCondition bc = boundary_case(bc_index);
  const AcceleratorConfig cfg = sweep_config(dims, radius);
  const TapSet taps =
      (box ? make_box_stencil(dims, radius, 31)
           : StarStencil::make_benchmark(dims, radius, 7).to_taps())
          .with_boundary(bc);
  const int iters = 5;  // 2+2+1: includes a partial temporal tail pass

  if (dims == 2) {
    Grid2D<float> base(61, 23);
    base.fill_random(radius + bc_index * 13 + (box ? 100 : 0));
    Grid2D<float> want = base;
    reference_run(taps, want, iters);

    Grid2D<float> sync = base;
    StencilAccelerator(taps, cfg).run(sync, iters);
    EXPECT_TRUE(compare_exact(sync, want).identical())
        << "sync 2D rad=" << radius << " box=" << box
        << " bc=" << boundary_kind_name(bc.kind);

    Grid2D<float> par = base;
    run_block_parallel(taps, cfg, par, iters, RunOptions{.workers = 3});
    EXPECT_TRUE(compare_exact(par, want).identical())
        << "block_parallel 2D rad=" << radius << " box=" << box
        << " bc=" << boundary_kind_name(bc.kind);
  } else {
    Grid3D<float> base(25, 19, 9);
    base.fill_random(radius + bc_index * 13 + (box ? 100 : 0));
    Grid3D<float> want = base;
    reference_run(taps, want, iters);

    Grid3D<float> sync = base;
    StencilAccelerator(taps, cfg).run(sync, iters);
    EXPECT_TRUE(compare_exact(sync, want).identical())
        << "sync 3D rad=" << radius << " box=" << box
        << " bc=" << boundary_kind_name(bc.kind);

    Grid3D<float> par = base;
    run_block_parallel(taps, cfg, par, iters, RunOptions{.workers = 3});
    EXPECT_TRUE(compare_exact(par, want).identical())
        << "block_parallel 3D rad=" << radius << " box=" << box
        << " bc=" << boundary_kind_name(bc.kind);
  }
}

std::string sweep_name(
    const ::testing::TestParamInfo<std::tuple<int, int, bool, int>>& info) {
  const auto [dims, radius, box, bc_index] = info.param;
  return std::string(dims == 2 ? "d2" : "d3") + "r" + std::to_string(radius) +
         (box ? "box" : "star") +
         boundary_kind_name(boundary_case(bc_index).kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllBoundaries, BoundarySweep,
    ::testing::Combine(::testing::Values(2, 3), ::testing::Range(1, 5),
                       ::testing::Bool(), ::testing::Range(0, 4)),
    sweep_name);

// ---------------------------------------------------------------------------
// Analytic semantics: single off-center taps make the boundary rule the
// entire answer, pinned against hand-computed values (not the reference,
// which shares helpers with the implementation).

TapSet shift_tap(int dims, int dx, int dy, int dz, BoundaryCondition bc) {
  return TapSet(dims, std::max({std::abs(dx), std::abs(dy), std::abs(dz), 1}),
                {Tap{dx, dy, dz, 1.0f}})
      .with_boundary(bc);
}

AcceleratorConfig whole_grid_config(int dims, int radius) {
  AcceleratorConfig cfg;
  cfg.dims = dims;
  cfg.radius = radius;
  cfg.parvec = 2;
  cfg.partime = 1;
  cfg.bsize_x = 64;
  cfg.bsize_y = dims == 3 ? 64 : 1;
  cfg.validate();
  return cfg;
}

TEST(BoundarySemantics, PeriodicShiftWrapsAround) {
  const TapSet taps = shift_tap(2, 1, 0, 0, BoundaryCondition::periodic());
  Grid2D<float> base(7, 5);
  base.fill_random(3);
  Grid2D<float> got = base;
  StencilAccelerator(taps, whole_grid_config(2, 1)).run(got, 1);
  for (std::int64_t y = 0; y < base.ny(); ++y) {
    for (std::int64_t x = 0; x < base.nx(); ++x) {
      EXPECT_EQ(got.at(x, y), base.at((x + 1) % base.nx(), y))
          << "x=" << x << " y=" << y;
    }
  }
}

TEST(BoundarySemantics, ReflectiveShiftMirrorsAtEdge) {
  // Tap at -1: column 0 reads the mirror of index -1, which is index 1
  // (mirror-about-the-cell-center convention: -1 -> 1, -2 -> 2; the edge
  // cell is not duplicated).
  const TapSet taps = shift_tap(2, -1, 0, 0, BoundaryCondition::reflective());
  Grid2D<float> base(7, 5);
  base.fill_random(4);
  Grid2D<float> got = base;
  StencilAccelerator(taps, whole_grid_config(2, 1)).run(got, 1);
  for (std::int64_t y = 0; y < base.ny(); ++y) {
    EXPECT_EQ(got.at(0, y), base.at(1, y)) << "y=" << y;
    for (std::int64_t x = 1; x < base.nx(); ++x) {
      EXPECT_EQ(got.at(x, y), base.at(x - 1, y)) << "x=" << x << " y=" << y;
    }
  }
}

TEST(BoundarySemantics, DirichletValueEntersAtTheBorderOnly) {
  // 2D radius-1 star over an all-zero grid with dirichlet(2): only cells
  // whose taps cross the border see the boundary value, and each
  // out-of-grid tap contributes exactly coeff * value.
  const float kBoundary = 2.0f;
  const float c = 0.25f;
  const TapSet taps =
      TapSet(2, 1,
             {Tap{0, 0, 0, 0.5f}, Tap{-1, 0, 0, c}, Tap{1, 0, 0, c},
              Tap{0, -1, 0, c}, Tap{0, 1, 0, c}},
             BoundaryCondition::dirichlet(kBoundary));
  Grid2D<float> got(8, 6, 0.0f);
  StencilAccelerator(taps, whole_grid_config(2, 1)).run(got, 1);
  for (std::int64_t y = 0; y < got.ny(); ++y) {
    for (std::int64_t x = 0; x < got.nx(); ++x) {
      int outside = 0;
      if (x == 0 || x == got.nx() - 1) ++outside;
      if (y == 0 || y == got.ny() - 1) ++outside;
      EXPECT_EQ(got.at(x, y), float(outside) * c * kBoundary)
          << "x=" << x << " y=" << y;
    }
  }
}

TEST(BoundarySemantics, ClampIsStillTheDefaultAndFingerprintNeutral) {
  // Satellite 2 contract: clamp tap sets fingerprint exactly as before
  // the BoundaryCondition field existed (warm PlanCaches and TuningCaches
  // survive the upgrade); every non-clamp condition gets its own identity.
  const TapSet plain = StarStencil::make_benchmark(2, 2, 7).to_taps();
  EXPECT_TRUE(plain.boundary().is_clamp());
  EXPECT_EQ(tap_set_fingerprint(plain),
            tap_set_fingerprint(plain.with_boundary(BoundaryCondition::clamp())));
  const std::uint64_t clamp_fp = tap_set_fingerprint(plain);
  EXPECT_NE(clamp_fp, tap_set_fingerprint(
                          plain.with_boundary(BoundaryCondition::periodic())));
  EXPECT_NE(clamp_fp, tap_set_fingerprint(plain.with_boundary(
                          BoundaryCondition::reflective())));
  EXPECT_NE(clamp_fp, tap_set_fingerprint(
                          plain.with_boundary(BoundaryCondition::dirichlet(1))));
  // Distinct dirichlet values are distinct stencils.
  EXPECT_NE(
      tap_set_fingerprint(plain.with_boundary(BoundaryCondition::dirichlet(1))),
      tap_set_fingerprint(
          plain.with_boundary(BoundaryCondition::dirichlet(2))));
}

}  // namespace
}  // namespace fpga_stencil
