// The specialized kernel subsystem's contract: every KernelRegistry entry
// is bit-exact with the scalar interpreter (the semantic reference), the
// registry matches exactly the canonical star/box envelope and nothing
// else, off-envelope configurations fall back to the interpreter, and
// dispatch is observable through telemetry and the plan cache.
//
// The exactness sweep runs the whole envelope -- star/box x 2D/3D x
// radius 1-4 x parvec {1,4,8,16} -- through StencilAccelerator twice
// (dispatch on / forced interpreter) on grids chosen so every block shape
// occurs: interior blocks, partial tail blocks in each blocked dimension,
// and a tail pass with fewer steps than partime.
#include <gtest/gtest.h>

#include "core/block_parallel_accelerator.hpp"
#include "core/stencil_accelerator.hpp"
#include "grid/grid_compare.hpp"
#include "kernels/kernel_registry.hpp"
#include "stencil/box_stencil.hpp"
#include "stencil/star_stencil.hpp"
#include "telemetry/telemetry.hpp"

namespace fpga_stencil {
namespace {

constexpr int kRadii[] = {1, 2, 3, 4};
constexpr int kParvecs[] = {1, 4, 8, 16};

TapSet envelope_taps(StencilShape shape, int dims, int radius,
                     std::uint64_t seed = 99) {
  if (shape == StencilShape::kStar) {
    return StarStencil::make_benchmark(dims, radius, seed).to_taps();
  }
  return make_box_stencil(dims, radius, seed);
}

/// Small config with every block-shape stress: bsize_x = 32 is a
/// multiple of every envelope parvec, partime = 2 with the grid sizes
/// below yields interior + partial-tail blocks and (iterations = 3) a
/// short final pass.
AcceleratorConfig envelope_config(int dims, int radius, int parvec,
                                  int partime = 2) {
  AcceleratorConfig cfg;
  cfg.dims = dims;
  cfg.radius = radius;
  cfg.parvec = parvec;
  cfg.partime = partime;
  cfg.bsize_x = 32;
  cfg.bsize_y = dims == 3 ? 2 * partime * radius + 5 : 1;
  return cfg;
}

struct ExactnessResult {
  CompareResult cmp;
  RunStats specialized;
  RunStats generic;
};

ExactnessResult run_both_2d(const TapSet& taps, AcceleratorConfig cfg,
                            std::int64_t nx, std::int64_t ny, int iters) {
  Grid2D<float> a(nx, ny), b(nx, ny);
  a.fill_random(7, -1.0f, 1.0f);
  b = a;
  cfg.use_specialized_kernels = true;
  StencilAccelerator fast(taps, cfg);
  ExactnessResult r;
  r.specialized = fast.run(a, iters);
  cfg.use_specialized_kernels = false;
  StencilAccelerator slow(taps, cfg);
  r.generic = slow.run(b, iters);
  r.cmp = compare_exact(a, b);
  return r;
}

ExactnessResult run_both_3d(const TapSet& taps, AcceleratorConfig cfg,
                            std::int64_t nx, std::int64_t ny, std::int64_t nz,
                            int iters) {
  Grid3D<float> a(nx, ny, nz), b(nx, ny, nz);
  a.fill_random(11, -1.0f, 1.0f);
  b = a;
  cfg.use_specialized_kernels = true;
  StencilAccelerator fast(taps, cfg);
  ExactnessResult r;
  r.specialized = fast.run(a, iters);
  cfg.use_specialized_kernels = false;
  StencilAccelerator slow(taps, cfg);
  r.generic = slow.run(b, iters);
  r.cmp = compare_exact(a, b);
  return r;
}

void expect_stats_parity(const ExactnessResult& r, const std::string& label) {
  EXPECT_TRUE(r.cmp.identical()) << label << ": " << r.cmp.summary();
  EXPECT_EQ(r.specialized.cells_written, r.generic.cells_written) << label;
  EXPECT_EQ(r.specialized.cells_streamed, r.generic.cells_streamed) << label;
  EXPECT_EQ(r.specialized.vectors_processed, r.generic.vectors_processed)
      << label;
  EXPECT_EQ(r.specialized.block_passes, r.generic.block_passes) << label;
}

TEST(KernelRegistry, CoversExactlyTheEnvelope) {
  const KernelRegistry& reg = KernelRegistry::instance();
  EXPECT_EQ(reg.entries().size(), 64u);
  for (StencilShape shape : {StencilShape::kStar, StencilShape::kBox}) {
    for (int dims : {2, 3}) {
      for (int rad : kRadii) {
        for (int pv : kParvecs) {
          const SpecializedKernel* k = reg.lookup(shape, dims, rad, pv);
          ASSERT_NE(k, nullptr);
          EXPECT_EQ(k->shape, shape);
          EXPECT_EQ(k->dims, dims);
          EXPECT_EQ(k->radius, rad);
          EXPECT_EQ(k->parvec, pv);
          EXPECT_NE(dims == 2 ? (void*)k->run_2d : (void*)k->run_3d, nullptr);
          EXPECT_NE(std::string(k->name).find(stencil_shape_name(shape)),
                    std::string::npos);
        }
      }
    }
  }
  EXPECT_EQ(reg.lookup(StencilShape::kStar, 2, 5, 4), nullptr);  // radius 5
  EXPECT_EQ(reg.lookup(StencilShape::kStar, 2, 1, 2), nullptr);  // parvec 2
}

TEST(KernelRegistry, FindMatchesCanonicalOrdersOnly) {
  const KernelRegistry& reg = KernelRegistry::instance();
  for (int dims : {2, 3}) {
    for (int rad : kRadii) {
      const TapSet star = envelope_taps(StencilShape::kStar, dims, rad);
      const TapSet box = envelope_taps(StencilShape::kBox, dims, rad);
      EXPECT_TRUE(matches_canonical_star(star));
      EXPECT_FALSE(matches_canonical_box(star));
      EXPECT_TRUE(matches_canonical_box(box));
      EXPECT_FALSE(matches_canonical_star(box));
      const AcceleratorConfig cfg = envelope_config(dims, rad, 4);
      EXPECT_NE(reg.find(star, cfg), nullptr);
      EXPECT_NE(reg.find(box, cfg), nullptr);

      // Same taps, reversed order: a different stencil bit-wise, so it
      // must not match (the kernels hard-code the accumulation order).
      std::vector<Tap> reversed(star.taps().rbegin(), star.taps().rend());
      const TapSet custom(dims, rad, std::move(reversed));
      EXPECT_EQ(reg.find(custom, cfg), nullptr);
    }
  }
}

TEST(KernelDispatch, EnvelopeExactness2D) {
  for (StencilShape shape : {StencilShape::kStar, StencilShape::kBox}) {
    for (int rad : kRadii) {
      for (int pv : kParvecs) {
        const AcceleratorConfig cfg = envelope_config(2, rad, pv);
        const TapSet taps = envelope_taps(shape, 2, rad);
        const ExactnessResult r = run_both_2d(taps, cfg, 45, 23, 3);
        expect_stats_parity(r, std::string(stencil_shape_name(shape)) +
                                   " 2D r" + std::to_string(rad) + " v" +
                                   std::to_string(pv));
      }
    }
  }
}

TEST(KernelDispatch, EnvelopeExactness3D) {
  for (StencilShape shape : {StencilShape::kStar, StencilShape::kBox}) {
    for (int rad : kRadii) {
      for (int pv : kParvecs) {
        const AcceleratorConfig cfg = envelope_config(3, rad, pv);
        const TapSet taps = envelope_taps(shape, 3, rad);
        const ExactnessResult r = run_both_3d(taps, cfg, 45, 27, 9, 3);
        expect_stats_parity(r, std::string(stencil_shape_name(shape)) +
                                   " 3D r" + std::to_string(rad) + " v" +
                                   std::to_string(pv));
      }
    }
  }
}

TEST(KernelDispatch, DeepTemporalChainAndPartialTail) {
  // partime 4 with iterations 6: a full 4-step pass then a 2-step tail,
  // halo 16 > radius so the influence-cone bound is exercised away from
  // its tight case.
  AcceleratorConfig cfg = envelope_config(3, 4, 8, 4);
  cfg.bsize_x = 48;
  cfg.bsize_y = 2 * cfg.partime * cfg.radius + 3;
  const TapSet taps = envelope_taps(StencilShape::kStar, 3, 4);
  const ExactnessResult r = run_both_3d(taps, cfg, 52, 40, 11, 6);
  expect_stats_parity(r, "star 3D r4 v8 partime4");
}

TEST(KernelDispatch, OffEnvelopeFallsBackBitExact) {
  // parvec 2 is off-envelope: both runs take the interpreter, results
  // identical, and telemetry shows fallback dispatches only.
  AcceleratorConfig cfg = envelope_config(2, 2, 2);
  Telemetry tel;
  cfg.telemetry = &tel;
  const TapSet taps = envelope_taps(StencilShape::kStar, 2, 2);
  EXPECT_EQ(KernelRegistry::instance().find(taps, cfg), nullptr);
  const ExactnessResult r = run_both_2d(taps, cfg, 45, 23, 3);
  expect_stats_parity(r, "star 2D r2 v2 (off-envelope)");
  EXPECT_GT(tel.metrics().counter("kernels.dispatch_fallback").value(), 0);
  EXPECT_EQ(tel.metrics().counter("kernels.dispatch_specialized").value(), 0);
}

TEST(KernelDispatch, TelemetryCountsSpecializedDispatch) {
  AcceleratorConfig cfg = envelope_config(2, 1, 4);
  Telemetry tel;
  cfg.telemetry = &tel;
  const TapSet taps = envelope_taps(StencilShape::kStar, 2, 1);
  Grid2D<float> g(40, 20);
  g.fill_random(3);
  StencilAccelerator accel(taps, cfg);
  (void)accel.run(g, 2);
  EXPECT_GT(tel.metrics().counter("kernels.dispatch_specialized").value(), 0);
  EXPECT_EQ(tel.metrics().counter("kernels.dispatch_fallback").value(), 0);
  // Per-kernel throughput gauge was published under the kernel's name.
  EXPECT_GE(tel.metrics().gauge("kernels.star_2d_r1_v4.cells_per_s").value(),
            0);
}

TEST(KernelDispatch, BlockParallelUsesSpecializedPathBitExact) {
  AcceleratorConfig cfg = envelope_config(3, 2, 4);
  const TapSet taps = envelope_taps(StencilShape::kStar, 3, 2);
  Grid3D<float> sync_grid(45, 27, 9), par_grid(45, 27, 9);
  sync_grid.fill_random(5, -1.0f, 1.0f);
  par_grid = sync_grid;

  StencilAccelerator accel(taps, cfg);
  (void)accel.run(sync_grid, 3);

  RunOptions opts;
  opts.workers = 3;
  (void)run_block_parallel(taps, cfg, par_grid, 3, opts);

  const CompareResult cmp = compare_exact(sync_grid, par_grid);
  EXPECT_TRUE(cmp.identical()) << cmp.summary();
}

TEST(KernelDispatch, CancellationAbortsSpecializedBlock) {
  AcceleratorConfig cfg = envelope_config(3, 2, 8);
  const TapSet taps = envelope_taps(StencilShape::kStar, 3, 2);
  Grid3D<float> g(45, 27, 9);
  g.fill_random(13);
  const Grid3D<float> before = g;

  const CancellationToken token = CancellationToken::make();
  token.request_cancel();
  StencilAccelerator accel(taps, cfg);
  EXPECT_THROW(accel.run(g, 2, nullptr, &token), CancelledError);
  // The aborted pass never published: the grid still holds the input.
  const CompareResult cmp = compare_exact(g, before);
  EXPECT_TRUE(cmp.identical()) << cmp.summary();
}

}  // namespace
}  // namespace fpga_stencil
