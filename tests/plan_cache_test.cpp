// Tests for the engine's plan cache (LRU, key sensitivity, validation) and
// buffer pool (reuse accounting, best-fit, retention cap).
#include <gtest/gtest.h>

#include "common/buffer_pool.hpp"
#include "engine/plan_cache.hpp"
#include "kernels/kernel_registry.hpp"
#include "stencil/box_stencil.hpp"
#include "stencil/star_stencil.hpp"

namespace fpga_stencil {
namespace {

AcceleratorConfig cfg2d(int radius = 1, int parvec = 4, int partime = 2) {
  AcceleratorConfig c;
  c.dims = 2;
  c.radius = radius;
  c.bsize_x = 32;
  c.parvec = parvec;
  c.partime = partime;
  return c;
}

TapSet star2d(int radius = 1, unsigned seed = 7) {
  return StarStencil::make_benchmark(2, radius, seed).to_taps();
}

TEST(TapSetFingerprint, StableAcrossEqualValueTapSets) {
  EXPECT_EQ(tap_set_fingerprint(star2d()), tap_set_fingerprint(star2d()));
  EXPECT_NE(tap_set_fingerprint(star2d(1, 7)),
            tap_set_fingerprint(star2d(1, 8)));  // different coefficients
  EXPECT_NE(tap_set_fingerprint(star2d(1)), tap_set_fingerprint(star2d(2)));
}

TEST(TapSetFingerprint, OrderIsPartOfTheIdentity) {
  // The tap order is the accumulation order, hence part of the bit-exact
  // contract: reordered taps are a different stencil.
  std::vector<Tap> taps = star2d().taps();
  std::swap(taps[0], taps[1]);
  const TapSet reordered(2, 1, taps);
  EXPECT_NE(tap_set_fingerprint(star2d()), tap_set_fingerprint(reordered));
}

TEST(PlanCache, HitMissAndLruEviction) {
  PlanCache cache(2);
  const TapSet taps = star2d();
  const AcceleratorConfig cfg = cfg2d();
  bool hit = true;

  (void)cache.lookup_or_build(taps, cfg, 64, 32, 1, &hit);
  EXPECT_FALSE(hit);
  (void)cache.lookup_or_build(taps, cfg, 64, 32, 1, &hit);
  EXPECT_TRUE(hit);
  (void)cache.lookup_or_build(taps, cfg, 128, 32, 1, &hit);
  EXPECT_FALSE(hit);
  // Touch 64x32 so 128x32 becomes the LRU victim of the next insert.
  (void)cache.lookup_or_build(taps, cfg, 64, 32, 1, &hit);
  EXPECT_TRUE(hit);
  (void)cache.lookup_or_build(taps, cfg, 96, 32, 1, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1);
  // The evicted extents rebuild; the recently-touched ones still hit.
  (void)cache.lookup_or_build(taps, cfg, 128, 32, 1, &hit);
  EXPECT_FALSE(hit);
  (void)cache.lookup_or_build(taps, cfg, 96, 32, 1, &hit);
  EXPECT_TRUE(hit);

  EXPECT_EQ(cache.hits(), 3);
  EXPECT_EQ(cache.misses(), 4);
}

TEST(PlanCache, KeyIsSensitiveToConfigAndCoefficients) {
  PlanCache cache(8);
  bool hit = true;
  (void)cache.lookup_or_build(star2d(), cfg2d(1, 4), 64, 32, 1, &hit);
  EXPECT_FALSE(hit);
  // Same extents, different vector width: a different plan (and a
  // different bitstream on a real system).
  (void)cache.lookup_or_build(star2d(), cfg2d(1, 2), 64, 32, 1, &hit);
  EXPECT_FALSE(hit);
  // Same shape, different coefficients: different stencil.
  (void)cache.lookup_or_build(star2d(1, 9), cfg2d(1, 4), 64, 32, 1, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.misses(), 3);
  EXPECT_EQ(cache.hits(), 0);
}

TEST(PlanCache, InvalidConfigurationsAreNeverCached) {
  PlanCache cache(4);
  AcceleratorConfig bad = cfg2d();
  bad.bsize_x = 4;  // halo (partime*rad = 2 per side) eats the block
  EXPECT_THROW(
      (void)cache.lookup_or_build(star2d(), bad, 64, 32, 1, nullptr),
      ConfigError);
  EXPECT_EQ(cache.size(), 0u);
  // The cache stays serviceable after the failed build.
  bool hit = true;
  (void)cache.lookup_or_build(star2d(), cfg2d(), 64, 32, 1, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCache, CachedPlanIsResolvedAndFingerprinted) {
  PlanCache cache(4);
  const auto star_plan =
      cache.lookup_or_build(star2d(), cfg2d(), 64, 32, 1, nullptr);
  EXPECT_EQ(star_plan->config.stage_lag, 1);  // star: lag == radius
  EXPECT_EQ(star_plan->blocking.valid_cells, 64 * 32);
  EXPECT_NE(star_plan->kernel_fingerprint, 0u);
  EXPECT_GT(star_plan->kernel_source_bytes, 0);

  // Box corners reach past `radius` whole rows: lag resolves to rad + 1,
  // and the generated kernel differs from the star's.
  const auto box_plan = cache.lookup_or_build(make_box_stencil(2, 1), cfg2d(),
                                              64, 32, 1, nullptr);
  EXPECT_EQ(box_plan->config.stage_lag, 2);
  EXPECT_NE(box_plan->kernel_fingerprint, star_plan->kernel_fingerprint);
}

TEST(PlanCache, ResolvesSpecializedKernelHandle) {
  PlanCache cache(8);
  // Canonical star at an envelope parvec: the plan carries the registry
  // handle stream_block will dispatch to.
  const auto fast_plan =
      cache.lookup_or_build(star2d(), cfg2d(1, 4), 64, 32, 1, nullptr);
  ASSERT_NE(fast_plan->specialized_kernel, nullptr);
  EXPECT_EQ(fast_plan->specialized_kernel->dims, 2);
  EXPECT_EQ(fast_plan->specialized_kernel->radius, 1);
  EXPECT_EQ(fast_plan->specialized_kernel->parvec, 4);
  EXPECT_EQ(std::string(fast_plan->specialized_kernel->name), "star_2d_r1_v4");

  // parvec 2 is off-envelope: same stencil, interpreter plan.
  const auto slow_plan =
      cache.lookup_or_build(star2d(), cfg2d(1, 2), 64, 32, 1, nullptr);
  EXPECT_EQ(slow_plan->specialized_kernel, nullptr);

  // Opting out of dispatch is part of the key (it changes which code
  // runs), so it builds a distinct, interpreter-bound plan.
  AcceleratorConfig generic = cfg2d(1, 4);
  generic.use_specialized_kernels = false;
  bool hit = true;
  const auto opted_out =
      cache.lookup_or_build(star2d(), generic, 64, 32, 1, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(opted_out->specialized_kernel, nullptr);
  EXPECT_NE(opted_out.get(), fast_plan.get());
}

TEST(PlanCache, EvictedPlansSurviveWhileHeld) {
  PlanCache cache(1);
  const auto held =
      cache.lookup_or_build(star2d(), cfg2d(), 64, 32, 1, nullptr);
  (void)cache.lookup_or_build(star2d(), cfg2d(), 128, 32, 1, nullptr);
  EXPECT_EQ(cache.evictions(), 1);
  // shared_ptr keeps the evicted plan alive for the job still running it.
  EXPECT_EQ(held->blocking.valid_cells, 64 * 32);
}

TEST(BufferPool, ReusesReleasedStorage) {
  BufferPool pool;
  std::vector<float> b = pool.acquire(1000);
  const float* data = b.data();
  pool.release(std::move(b));
  // A smaller request reuses the same backing store.
  std::vector<float> again = pool.acquire(500);
  EXPECT_EQ(again.data(), data);
  EXPECT_EQ(again.size(), 500u);
  EXPECT_EQ(pool.acquires(), 2);
  EXPECT_EQ(pool.allocations(), 1);
  EXPECT_EQ(pool.reuses(), 1);
}

TEST(BufferPool, BestFitPrefersTheSmallestSufficientBuffer) {
  BufferPool pool;
  std::vector<float> small = pool.acquire(64);
  std::vector<float> large = pool.acquire(4096);
  pool.release(std::move(large));
  pool.release(std::move(small));
  // 32 floats fit in both; the 64-float buffer must be chosen so the big
  // one stays available for big jobs.
  std::vector<float> got = pool.acquire(32);
  EXPECT_LT(got.capacity(), 4096u);
  ASSERT_EQ(pool.retained(), 1u);
  std::vector<float> big = pool.acquire(4000);
  EXPECT_EQ(pool.reuses(), 2);
  EXPECT_EQ(pool.allocations(), 2);
  pool.release(std::move(got));
  pool.release(std::move(big));
}

TEST(BufferPool, RetentionCapAndEmptyReleases) {
  BufferPool pool(/*max_retained=*/2);
  std::vector<float> a = pool.acquire(10);
  std::vector<float> b = pool.acquire(10);
  std::vector<float> c = pool.acquire(10);
  pool.release(std::move(a));
  pool.release(std::move(b));
  pool.release(std::move(c));  // beyond the cap: dropped
  EXPECT_EQ(pool.retained(), 2u);
  // Storage lost to an aborted pass comes back as an empty vector; the
  // pool must not retain a dead entry.
  pool.release(std::vector<float>{});
  EXPECT_EQ(pool.retained(), 2u);
  EXPECT_GT(pool.retained_bytes(), 0);
  pool.clear();
  EXPECT_EQ(pool.retained(), 0u);
  EXPECT_EQ(pool.retained_bytes(), 0);
}

TEST(BufferPool, LeaseReturnsStorageOnScopeExit) {
  BufferPool pool;
  {
    BufferPool::Lease lease(pool, 128);
    EXPECT_EQ(lease.buffer().size(), 128u);
    EXPECT_EQ(pool.retained(), 0u);
  }
  EXPECT_EQ(pool.retained(), 1u);
  {
    BufferPool::Lease lease(pool, 64);
    (void)lease;
  }
  EXPECT_EQ(pool.allocations(), 1);
  EXPECT_EQ(pool.reuses(), 1);
}

}  // namespace
}  // namespace fpga_stencil
