// Tests for the workload initializers.
#include <gtest/gtest.h>

#include <cmath>

#include "stencil/workloads.hpp"

namespace fpga_stencil {
namespace {

TEST(Workloads, GaussianPeakAtCenter) {
  Grid2D<float> g(33, 33, 0.0f);
  add_gaussian(g, 16.0, 16.0, 3.0, 10.0f);
  EXPECT_NEAR(g.at(16, 16), 10.0f, 1e-5f);
  EXPECT_LT(g.at(0, 0), 1e-3f);
  // Radially monotone along the axis.
  EXPECT_GT(g.at(17, 16), g.at(20, 16));
  EXPECT_THROW(add_gaussian(g, 0, 0, 0.0, 1.0f), ConfigError);
}

TEST(Workloads, GaussianAccumulates) {
  Grid2D<float> g(16, 16, 0.0f);
  add_gaussian(g, 8, 8, 2.0, 1.0f);
  const float first = g.at(8, 8);
  add_gaussian(g, 8, 8, 2.0, 1.0f);
  EXPECT_FLOAT_EQ(g.at(8, 8), 2.0f * first);
}

TEST(Workloads, Gaussian3D) {
  Grid3D<float> g(17, 17, 17, 0.0f);
  add_gaussian(g, 8, 8, 8, 2.0, 5.0f);
  EXPECT_NEAR(g.at(8, 8, 8), 5.0f, 1e-5f);
  EXPECT_GT(g.at(8, 8, 8), g.at(8, 8, 12));
}

TEST(Workloads, PlaneWaveBounded) {
  Grid2D<float> g(64, 64, 0.0f);
  add_plane_wave(g, 0.3, 0.1, 2.0f);
  const FieldStats s = field_stats(g);
  EXPECT_LE(s.peak, 2.0f + 1e-5f);
  EXPECT_GT(s.l2, 0.0);
  // A sine over many periods roughly integrates to zero.
  EXPECT_LT(std::abs(s.total), 0.05 * s.l2 * 64.0);
}

TEST(Workloads, PointSourcesDeterministic) {
  Grid2D<float> a(32, 32, 0.0f), b(32, 32, 0.0f);
  add_point_sources(a, 10, 1.0f, 5);
  add_point_sources(b, 10, 1.0f, 5);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]);
  }
  // Total mass equals the injected amount even if sources collide.
  EXPECT_NEAR(field_stats(a).total, 10.0, 1e-5);
  EXPECT_THROW(add_point_sources(a, -1, 1.0f), ConfigError);
}

TEST(Workloads, FieldStats3D) {
  Grid3D<float> g(4, 4, 4, 0.5f);
  const FieldStats s = field_stats(g);
  EXPECT_NEAR(s.total, 32.0, 1e-5);
  EXPECT_FLOAT_EQ(s.peak, 0.5f);
  EXPECT_NEAR(s.l2, std::sqrt(64 * 0.25), 1e-5);
}

}  // namespace
}  // namespace fpga_stencil
