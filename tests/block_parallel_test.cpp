// Block-parallel backend tests. The load-bearing property is determinism:
// the same job must be bit-identical to the synchronous simulator at ANY
// worker count -- including more workers than blocks, worker counts that
// do not divide the block count, and partial tail passes. The full sweep
// runs star and box stencils at radius 1-4 in 2D and 3D; the suite is
// part of the sanitize job, so the worker pool is also exercised under
// TSan/ASan.
#include <gtest/gtest.h>

#include "common/buffer_pool.hpp"
#include "core/block_parallel_accelerator.hpp"
#include "core/stencil_accelerator.hpp"
#include "engine/run.hpp"
#include "engine/stencil_engine.hpp"
#include "fault/fault_injector.hpp"
#include "grid/grid_compare.hpp"
#include "stencil/box_stencil.hpp"
#include "stencil/reference.hpp"
#include "stencil/star_stencil.hpp"
#include "telemetry/telemetry.hpp"

namespace fpga_stencil {
namespace {

constexpr int kWorkerCounts[] = {1, 2, 7, 16};

/// Small blocks on purpose: many blocks (non-divisible by any tested
/// worker count) while the grids stay test-sized.
AcceleratorConfig sweep_config(int dims, int radius) {
  AcceleratorConfig cfg;
  cfg.dims = dims;
  cfg.radius = radius;
  cfg.parvec = 2;
  cfg.partime = 2;
  // csize = bsize - 2*partime*radius must stay positive; keep it small so
  // even the 2D grids decompose into several blocks.
  cfg.bsize_x = 2 * cfg.partime * radius + 4;
  cfg.bsize_y = dims == 3 ? cfg.bsize_x : 1;
  cfg.validate();
  return cfg;
}

class BlockParallelSweep
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(BlockParallelSweep, BitExactWithSyncAtEveryWorkerCount) {
  const auto [dims, radius, box] = GetParam();
  const AcceleratorConfig cfg = sweep_config(dims, radius);
  const TapSet taps =
      box ? make_box_stencil(dims, radius, 31)
          : StarStencil::make_benchmark(dims, radius, 7).to_taps();
  // Grid extents chosen so csize (always 4 here) does not divide them:
  // the last block of each dimension is partial.
  const int iters = 5;  // 2+2+1: includes a partial tail pass

  if (dims == 2) {
    Grid2D<float> base(61, 23);
    base.fill_random(radius + (box ? 100 : 0));
    Grid2D<float> want = base;
    StencilAccelerator accel(taps, cfg);
    const RunStats sync_stats = accel.run(want, iters);
    ASSERT_GT(sync_stats.block_passes, 0);
    for (const int workers : kWorkerCounts) {
      Grid2D<float> g = base;
      const RunStats stats = run_block_parallel(
          taps, cfg, g, iters, RunOptions{.workers = workers});
      EXPECT_TRUE(compare_exact(g, want).identical())
          << "dims=2 rad=" << radius << " box=" << box
          << " workers=" << workers;
      // Identical decomposition => identical work accounting.
      EXPECT_EQ(stats.cells_streamed, sync_stats.cells_streamed);
      EXPECT_EQ(stats.cells_written, sync_stats.cells_written);
      EXPECT_EQ(stats.vectors_processed, sync_stats.vectors_processed);
      EXPECT_EQ(stats.block_passes, sync_stats.block_passes);
      EXPECT_EQ(stats.passes, sync_stats.passes);
      EXPECT_EQ(stats.time_steps, sync_stats.time_steps);
    }
  } else {
    Grid3D<float> base(25, 19, 9);
    base.fill_random(radius + (box ? 100 : 0));
    Grid3D<float> want = base;
    StencilAccelerator accel(taps, cfg);
    const RunStats sync_stats = accel.run(want, iters);
    ASSERT_GT(sync_stats.block_passes, 0);
    for (const int workers : kWorkerCounts) {
      Grid3D<float> g = base;
      const RunStats stats = run_block_parallel(
          taps, cfg, g, iters, RunOptions{.workers = workers});
      EXPECT_TRUE(compare_exact(g, want).identical())
          << "dims=3 rad=" << radius << " box=" << box
          << " workers=" << workers;
      EXPECT_EQ(stats.cells_streamed, sync_stats.cells_streamed);
      EXPECT_EQ(stats.cells_written, sync_stats.cells_written);
      EXPECT_EQ(stats.block_passes, sync_stats.block_passes);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(StarAndBox, BlockParallelSweep,
                         ::testing::Combine(::testing::Values(2, 3),
                                            ::testing::Values(1, 2, 3, 4),
                                            ::testing::Bool()));

TEST(BlockParallel, MatchesNaiveReference) {
  // Transitivity check straight to ground truth, not just to the sync
  // simulator.
  const AcceleratorConfig cfg = sweep_config(2, 2);
  const StarStencil s = StarStencil::make_benchmark(2, 2, 5);
  Grid2D<float> g(50, 21);
  g.fill_random(3);
  Grid2D<float> want = g;
  run_block_parallel(s.to_taps(), cfg, g, 7, RunOptions{.workers = 4});
  reference_run(s, want, 7);
  EXPECT_TRUE(compare_exact(g, want).identical());
}

TEST(BlockParallel, ZeroIterationsIsANoOp) {
  const AcceleratorConfig cfg = sweep_config(2, 1);
  const StarStencil s = StarStencil::make_benchmark(2, 1);
  Grid2D<float> g(30, 10);
  g.fill_random(1);
  Grid2D<float> want = g;
  const RunStats stats =
      run_block_parallel(s.to_taps(), cfg, g, 0, RunOptions{.workers = 3});
  EXPECT_EQ(stats.passes, 0);
  EXPECT_TRUE(compare_exact(g, want).identical());
}

TEST(BlockParallel, WorkerResolutionClampsToBlocks) {
  const AcceleratorConfig cfg = sweep_config(2, 1);  // bsize 8, csize 4
  const BlockingPlan plan = make_blocking_plan(cfg, 17, 10);  // 5 blocks
  EXPECT_EQ(plan.total_blocks(), 5);
  EXPECT_EQ(resolved_block_workers(RunOptions{.workers = 16}, plan), 5);
  EXPECT_EQ(resolved_block_workers(RunOptions{.workers = 2}, plan), 2);
  EXPECT_GE(requested_block_workers(0), 1);  // hardware_concurrency floor
}

TEST(BlockParallel, BlockExtentEnumeratesThePlan) {
  AcceleratorConfig cfg = sweep_config(3, 1);  // bsize 8x8, csize 4x4
  const BlockingPlan plan = make_blocking_plan(cfg, 10, 6, 5);
  ASSERT_EQ(plan.blocks_x, 3);
  ASSERT_EQ(plan.blocks_y, 2);
  ASSERT_EQ(plan.total_blocks(), 6);
  const BlockExtent first = block_extent(plan, 0);
  EXPECT_EQ(first.bx, 0);
  EXPECT_EQ(first.by, 0);
  EXPECT_EQ(first.x0, -cfg.halo());
  EXPECT_EQ(first.valid_x_end, 4);
  const BlockExtent last = block_extent(plan, 5);
  EXPECT_EQ(last.bx, 2);
  EXPECT_EQ(last.by, 1);
  EXPECT_EQ(last.valid_x_end, 10);  // clamped to nx: partial block
  EXPECT_EQ(last.valid_y_end, 6);
  EXPECT_THROW(block_extent(plan, 6), ConfigError);
  EXPECT_THROW(block_extent(plan, -1), ConfigError);
}

TEST(BlockParallel, PoolLeasesServeWorkerLaneScratch) {
  const AcceleratorConfig cfg = sweep_config(2, 1);
  const StarStencil s = StarStencil::make_benchmark(2, 1);
  BufferPool pool;
  Grid2D<float> g(61, 23);
  g.fill_random(9);
  Grid2D<float> want = g;
  RunOptions opts;
  opts.workers = 4;
  opts.pool = &pool;
  run_block_parallel(s.to_taps(), cfg, g, 4, opts);
  reference_run(s, want, 4);
  EXPECT_TRUE(compare_exact(g, want).identical());
  EXPECT_GE(pool.acquires(), 4);  // one lane lease per worker
  // Leases returned: a second run reuses instead of allocating.
  const std::int64_t allocs = pool.allocations();
  Grid2D<float> h(61, 23);
  h.fill_random(9);
  run_block_parallel(s.to_taps(), cfg, h, 4, opts);
  EXPECT_EQ(pool.allocations(), allocs);
}

TEST(BlockParallel, TelemetryRecordsWorkersBlocksAndRedundancy) {
  Telemetry telemetry;
  const AcceleratorConfig cfg = sweep_config(2, 2);
  const StarStencil s = StarStencil::make_benchmark(2, 2);
  Grid2D<float> g(61, 23);
  g.fill_random(2);
  RunOptions opts;
  opts.workers = 3;
  opts.telemetry = &telemetry;
  const RunStats stats = run_block_parallel(s.to_taps(), cfg, g, 4, opts);
  const MetricsSnapshot snap = telemetry.metrics().snapshot();
  EXPECT_EQ(snap.value_or("block_parallel.workers", -1), 3);
  EXPECT_EQ(snap.value_or("block_parallel.blocks", -1), stats.block_passes);
  EXPECT_EQ(snap.value_or("block_parallel.redundancy_milli", -1),
            std::int64_t(stats.redundancy() * 1000.0));
  EXPECT_EQ(snap.value_or("block_parallel.passes", -1), stats.passes);
  EXPECT_GT(snap.value_or("block_parallel.cells_written", 0), 0);
  // Per-worker busy spans: one histogram observation per worker.
  const MetricSample* busy = snap.find("block_parallel.worker_busy_ns");
  ASSERT_NE(busy, nullptr);
  EXPECT_EQ(busy->value, 3);
}

// ------------------------------------------------- unified run() routing

TEST(UnifiedRun, ExplicitBackendsAreBitExact) {
  const AcceleratorConfig cfg = sweep_config(2, 2);
  const StarStencil s = StarStencil::make_benchmark(2, 2, 9);
  Grid2D<float> base(61, 23);
  base.fill_random(4);
  Grid2D<float> want = base;
  reference_run(s, want, 5);
  for (const ExecutionBackend backend :
       {ExecutionBackend::sync_sim, ExecutionBackend::concurrent,
        ExecutionBackend::block_parallel, ExecutionBackend::resilient}) {
    Grid2D<float> g = base;
    RunOptions opts;
    opts.backend = backend;
    opts.workers = 3;
    const RunStats stats = run(s.to_taps(), cfg, g, 5, opts);
    EXPECT_TRUE(compare_exact(g, want).identical()) << backend_name(backend);
    EXPECT_EQ(stats.time_steps, 5) << backend_name(backend);
  }
}

TEST(UnifiedRun, AutomaticRoutingPolicy) {
  const AcceleratorConfig cfg = sweep_config(2, 1);  // csize 4
  const TapSet taps = StarStencil::make_benchmark(2, 1).to_taps();
  // 61 cells / csize 4 = 16 blocks: enough for 8 workers (2 per worker)...
  RunOptions opts;
  opts.workers = 8;
  EXPECT_EQ(resolve_backend(taps, cfg, 61, 23, 1, opts),
            ExecutionBackend::block_parallel);
  // ...but not for 9 (needs 18).
  opts.workers = 9;
  EXPECT_EQ(resolve_backend(taps, cfg, 61, 23, 1, opts),
            ExecutionBackend::sync_sim);
  // A single worker never fans out.
  opts.workers = 1;
  EXPECT_EQ(resolve_backend(taps, cfg, 61, 23, 1, opts),
            ExecutionBackend::sync_sim);
  // An injector always routes to the resilient runner.
  FaultInjector fi(FaultPlan::parse("seed=1,seu_bit_flip:n=1"));
  opts.workers = 8;
  opts.injector = &fi;
  EXPECT_EQ(resolve_backend(taps, cfg, 61, 23, 1, opts),
            ExecutionBackend::resilient);
}

TEST(UnifiedRun, ClusterBackendIsEngineOnly) {
  const AcceleratorConfig cfg = sweep_config(2, 1);
  const StarStencil s = StarStencil::make_benchmark(2, 1);
  Grid2D<float> g(30, 10);
  g.fill_random(1);
  RunOptions opts;
  opts.backend = ExecutionBackend::cluster;
  EXPECT_THROW(run(s.to_taps(), cfg, g, 1, opts), ConfigError);
}

// ------------------------------------------------- engine integration

TEST(EngineBlockParallel, ExplicitBackendRunsAndMatchesSync) {
  StencilEngine engine;
  const AcceleratorConfig cfg = sweep_config(2, 2);
  const TapSet taps = StarStencil::make_benchmark(2, 2, 21).to_taps();
  Grid2D<float> base(61, 23);
  base.fill_random(6);
  Grid2D<float> want = base;
  StencilAccelerator accel(taps, cfg);
  accel.run(want, 6);

  JobSpec spec(taps, cfg, Grid2D<float>(base), 6);
  spec.backend = Backend::block_parallel;
  spec.workers = 4;
  JobResult result = engine.run(std::move(spec));
  EXPECT_EQ(result.backend, Backend::block_parallel);
  EXPECT_TRUE(compare_exact(result.grid2d(), want).identical());
}

TEST(EngineBlockParallel, AutomaticRoutingNeedsTwoBlocksPerWorker) {
  StencilEngine engine;
  const AcceleratorConfig cfg = sweep_config(2, 1);  // csize 4
  const TapSet taps = StarStencil::make_benchmark(2, 1).to_taps();
  Grid2D<float> g(61, 23);  // 16 blocks
  g.fill_random(2);

  JobSpec wide(taps, cfg, Grid2D<float>(g), 2);
  wide.workers = 8;  // 16 >= 2*8: fan out
  EXPECT_EQ(engine.run(std::move(wide)).backend, Backend::block_parallel);

  JobSpec narrow(taps, cfg, Grid2D<float>(g), 2);
  narrow.workers = 9;  // 16 < 18: stay on the sync sweep
  EXPECT_EQ(engine.run(std::move(narrow)).backend, Backend::sync_sim);
}

// PR 1 introduced the watchdog for the concurrent pipeline; PR 6 wires
// it into the block-parallel pool. The load-bearing property: one worker
// parked on the injector's stall gate (a hung PE) must not deadlock the
// two-barrier pass protocol -- the watchdog's unwind releases the gate,
// every sibling drains, and the whole pool retires through both barriers.
TEST(BlockParallelWatchdog, StalledWorkerUnwindsWholePoolWithoutDeadlock) {
  const AcceleratorConfig cfg = sweep_config(2, 1);
  const TapSet taps = StarStencil::make_benchmark(2, 1, 7).to_taps();
  Grid2D<float> g(61, 23);
  g.fill_random(5);
  const Grid2D<float> initial = g;

  FaultInjector fi(FaultPlan::parse("seed=7,kernel_hang:n=1"));
  RunOptions opts;
  opts.workers = 4;  // P >= 2: siblings are mid-pass when the stall hits
  opts.injector = &fi;
  opts.watchdog_deadline = std::chrono::milliseconds(100);
  // The hang fires on the first pass; the watchdog unwinds it. If the
  // unwind mishandled either barrier this test would hang, not fail.
  EXPECT_THROW((void)run_block_parallel(taps, cfg, g, 6, opts),
               PassAbortedError);
  // No pass completed: the caller's grid is untouched (the aborted pass
  // wrote only the scratch side).
  EXPECT_TRUE(compare_exact(g, initial).identical());
}

TEST(BlockParallelWatchdog, CleanRunUnderWatchdogStaysBitExact) {
  const AcceleratorConfig cfg = sweep_config(2, 1);
  const TapSet taps = StarStencil::make_benchmark(2, 1, 7).to_taps();
  Grid2D<float> want(61, 23);
  want.fill_random(5);
  Grid2D<float> g = want;
  StencilAccelerator accel(taps, cfg);
  accel.run(want, 6);

  RunOptions opts;
  opts.workers = 4;
  opts.watchdog_deadline = std::chrono::milliseconds(10000);
  (void)run_block_parallel(taps, cfg, g, 6, opts);
  EXPECT_TRUE(compare_exact(g, want).identical());
}

}  // namespace
}  // namespace fpga_stencil
