// Program IR tests (docs/PROGRAMS.md): DAG validation rejects every
// program whose result would depend on scheduling tie-breaks; the
// executor matches the multi-field golden model bit-for-bit through the
// engine AND the cluster front door; the single-stencil adapter is
// equivalent to the classic direct run; program plans hit the tuner
// cache once per node per run; leases all return to the pool; fields
// stream through chunk sinks in declaration order.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/expect.hpp"
#include "engine/engine_cluster.hpp"
#include "engine/stencil_engine.hpp"
#include "grid/grid_compare.hpp"
#include "program/program_executor.hpp"
#include "program/program_reference.hpp"
#include "program/program_spec.hpp"
#include "stencil/star_stencil.hpp"

namespace fpga_stencil {
namespace {

AcceleratorConfig base_config(int dims, int radius) {
  AcceleratorConfig cfg;
  cfg.dims = dims;
  cfg.radius = radius;
  cfg.parvec = 2;
  cfg.partime = 1;
  cfg.bsize_x = 32;
  cfg.bsize_y = dims == 3 ? 32 : 1;
  cfg.validate();
  return cfg;
}

TapSet taps_2d(std::initializer_list<Tap> taps, int radius = 1) {
  return TapSet(2, radius, taps);
}

/// The 2D FDTD-style E/H update from the flagship campaign, shrunk to
/// test size: three coupled fields, four nodes, explicit `after` edges
/// ordering the two ez writers and the reads of the freshly-written hy.
ProgramSpec make_fdtd_program(std::int64_t nx, std::int64_t ny, int steps) {
  ProgramSpec p;
  Grid2D<float> ez(nx, ny);
  ez.fill_random(11, -1.0f, 1.0f);
  Grid2D<float> hx(nx, ny);
  hx.fill_random(12, -0.5f, 0.5f);
  Grid2D<float> hy(nx, ny);
  hy.fill_random(13, -0.5f, 0.5f);
  p.fields = {
      FieldSpec{"ez", std::move(ez), BoundaryCondition::dirichlet(0.0f)},
      FieldSpec{"hx", std::move(hx), BoundaryCondition::clamp()},
      FieldSpec{"hy", std::move(hy), BoundaryCondition::clamp()},
  };
  const AcceleratorConfig cfg = base_config(2, 1);
  p.nodes = {
      KernelNode{"hx_up",
                 taps_2d({Tap{0, 0, 0, -0.5f}, Tap{0, 1, 0, 0.5f}}), cfg,
                 "ez", "hx", CombineOp::add, 1, {}},
      KernelNode{"hy_up",
                 taps_2d({Tap{0, 0, 0, 0.5f}, Tap{1, 0, 0, -0.5f}}), cfg,
                 "ez", "hy", CombineOp::add, 1, {}},
      // ez reads the H fields *written this step*: both curl halves
      // depend on their writer, and the two ez writers are ordered.
      KernelNode{"ez_x",
                 taps_2d({Tap{0, 0, 0, 0.5f}, Tap{-1, 0, 0, -0.5f}}), cfg,
                 "hy", "ez", CombineOp::add, 1, {"hy_up"}},
      KernelNode{"ez_y",
                 taps_2d({Tap{0, 0, 0, -0.5f}, Tap{0, -1, 0, 0.5f}}), cfg,
                 "hx", "ez", CombineOp::add, 1, {"hx_up", "ez_x"}},
  };
  p.steps = steps;
  return p;
}

void expect_fields_identical(
    const std::vector<std::pair<std::string, GridVariant>>& got,
    const std::vector<std::pair<std::string, GridVariant>>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].first, want[i].first);
    if (std::holds_alternative<Grid2D<float>>(want[i].second)) {
      EXPECT_TRUE(compare_exact(std::get<Grid2D<float>>(got[i].second),
                                std::get<Grid2D<float>>(want[i].second))
                      .identical())
          << "field " << want[i].first;
    } else {
      EXPECT_TRUE(compare_exact(std::get<Grid3D<float>>(got[i].second),
                                std::get<Grid3D<float>>(want[i].second))
                      .identical())
          << "field " << want[i].first;
    }
  }
}

// ---------------------------------------------------------------------------
// Validation

TEST(ProgramValidate, RejectsDependencyCycle) {
  ProgramSpec p = make_fdtd_program(16, 12, 1);
  p.nodes[0].after = {"ez_y"};  // hx_up -> ez_y -> hx_up
  EXPECT_THROW(p.validate(), ConfigError);
  EXPECT_THROW(p.schedule(), ConfigError);
}

TEST(ProgramValidate, RejectsUnknownFieldAndNodeReferences) {
  {
    ProgramSpec p = make_fdtd_program(16, 12, 1);
    p.nodes[0].reads = "nope";
    EXPECT_THROW(p.validate(), ConfigError);
  }
  {
    ProgramSpec p = make_fdtd_program(16, 12, 1);
    p.nodes[0].writes = "nope";
    EXPECT_THROW(p.validate(), ConfigError);
  }
  {
    ProgramSpec p = make_fdtd_program(16, 12, 1);
    p.nodes[0].after = {"no_such_node"};
    EXPECT_THROW(p.validate(), ConfigError);
  }
}

TEST(ProgramValidate, RejectsWorkFieldReadBeforeWrite) {
  // A work field has no meaningful front state: reading it in a node that
  // does not depend on this step's writer is a use of stale scratch.
  ProgramSpec p;
  p.fields = {
      FieldSpec{"u", Grid2D<float>(16, 12), BoundaryCondition::clamp()},
      FieldSpec{"scratch", Grid2D<float>(16, 12), BoundaryCondition::clamp(),
                /*work=*/true},
  };
  const AcceleratorConfig cfg = base_config(2, 1);
  const TapSet id = taps_2d({Tap{0, 0, 0, 1.0f}});
  p.nodes = {
      KernelNode{"fill", id, cfg, "u", "scratch", CombineOp::assign, 1, {}},
      KernelNode{"use", id, cfg, "scratch", "u", CombineOp::assign, 1, {}},
  };
  EXPECT_THROW(p.validate(), ConfigError);
  p.nodes[1].after = {"fill"};  // ordered after the writer: legal
  EXPECT_NO_THROW(p.validate());
}

TEST(ProgramValidate, RejectsTieBreakDependentWriters) {
  // Two writers of one field with no ordering between them: the result
  // would depend on which the scheduler happens to run first.
  ProgramSpec p;
  p.fields = {FieldSpec{"u", Grid2D<float>(16, 12), BoundaryCondition::clamp()}};
  const AcceleratorConfig cfg = base_config(2, 1);
  const TapSet id = taps_2d({Tap{0, 0, 0, 1.0f}});
  p.nodes = {
      KernelNode{"a", id, cfg, "u", "u", CombineOp::assign, 1, {}},
      KernelNode{"b", id, cfg, "u", "u", CombineOp::add, 1, {}},
  };
  EXPECT_THROW(p.validate(), ConfigError);
  p.nodes[1].after = {"a"};  // assign first, add ordered after: legal
  EXPECT_NO_THROW(p.validate());
  // assign *after* an add clobbers the earlier writer's contribution.
  p.nodes[0].combine = CombineOp::add;
  p.nodes[1].combine = CombineOp::assign;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(ProgramValidate, ScheduleIsDeterministicTopologicalOrder) {
  const ProgramSpec p = make_fdtd_program(16, 12, 1);
  EXPECT_NO_THROW(p.validate());
  const std::vector<std::size_t> order = p.schedule();
  // Declaration-index tie-break: hx_up and hy_up are both ready first.
  const std::vector<std::size_t> want = {0, 1, 2, 3};
  EXPECT_EQ(order, want);
}

// ---------------------------------------------------------------------------
// Identity

TEST(ProgramFingerprint, ExcludesStepsAndValuesIncludesStructure) {
  const ProgramSpec a = make_fdtd_program(16, 12, 3);
  ProgramSpec b = make_fdtd_program(16, 12, 7);  // more steps, same DAG
  std::get<Grid2D<float>>(b.fields[0].data).fill_random(99);  // other values
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  ProgramSpec c = make_fdtd_program(16, 12, 3);
  c.fields[0].boundary = BoundaryCondition::reflective();
  EXPECT_NE(a.fingerprint(), c.fingerprint());

  ProgramSpec d = make_fdtd_program(16, 12, 3);
  d.nodes[2].taps = taps_2d({Tap{0, 0, 0, 0.5f}, Tap{-1, 0, 0, -0.25f}});
  EXPECT_NE(a.fingerprint(), d.fingerprint());

  ProgramSpec e = make_fdtd_program(20, 12, 3);  // other extents
  EXPECT_NE(a.fingerprint(), e.fingerprint());
}

TEST(ProgramFingerprint, StampedTapsCarryTheReadFieldBoundary) {
  ProgramSpec p = make_fdtd_program(16, 12, 1);
  // Node 0 reads ez, which is dirichlet(0): the planned taps carry it.
  EXPECT_EQ(p.stamped_taps(0).boundary(), BoundaryCondition::dirichlet(0.0f));
  // Node 2 reads hy (clamp).
  EXPECT_TRUE(p.stamped_taps(2).boundary().is_clamp());
}

// ---------------------------------------------------------------------------
// Execution through the engine front door

TEST(ProgramExecution, FdtdMatchesGoldenModelBitExact) {
  auto program = std::make_shared<const ProgramSpec>(make_fdtd_program(33, 21, 4));
  const auto want = reference_run_program(*program);

  StencilEngine engine({.workers = 2});
  JobResult r = engine.run(JobSpec(program));
  EXPECT_EQ(r.program_nodes_executed, 4 * 4);
  EXPECT_EQ(r.program_steps, 4);
  expect_fields_identical(r.fields, want);
  // Named accessor finds fields; unknown names throw.
  EXPECT_EQ(&r.field("ez"), &r.fields[0].second);
  EXPECT_THROW(r.field("nope"), std::out_of_range);
  // Every front/back/work lease went back to the pool.
  EXPECT_EQ(engine.buffer_pool().outstanding(), 0);
}

TEST(ProgramExecution, DampedWave3DWithMixedBoundaries) {
  // The 3D damped-wave shape from the flagship campaign: u_next is a work
  // field assembled by two ordered writers, then rotated into u/u_prev by
  // identity copy nodes -- and the two live fields carry different
  // boundary conditions.
  const float kC = 0.0625f, kGamma = 0.0625f;
  ProgramSpec p;
  Grid3D<float> u(13, 11, 7);
  u.fill_random(21, -1.0f, 1.0f);
  Grid3D<float> u_prev = u;
  p.fields = {
      FieldSpec{"u_prev", std::move(u_prev), BoundaryCondition::clamp()},
      FieldSpec{"u", std::move(u), BoundaryCondition::reflective()},
      FieldSpec{"u_next", Grid3D<float>(13, 11, 7), BoundaryCondition::clamp(),
                /*work=*/true},
  };
  const AcceleratorConfig cfg = base_config(3, 1);
  const TapSet wave(3, 1,
                    {Tap{0, 0, 0, 2.0f - kGamma - 6.0f * kC},
                     Tap{-1, 0, 0, kC}, Tap{1, 0, 0, kC}, Tap{0, -1, 0, kC},
                     Tap{0, 1, 0, kC}, Tap{0, 0, -1, kC}, Tap{0, 0, 1, kC}});
  const TapSet center(3, 1, {Tap{0, 0, 0, -(1.0f - kGamma)}});
  const TapSet id3(3, 1, {Tap{0, 0, 0, 1.0f}});
  p.nodes = {
      KernelNode{"laplace", wave, cfg, "u", "u_next", CombineOp::assign, 1, {}},
      KernelNode{"damp", center, cfg, "u_prev", "u_next", CombineOp::add, 1,
                 {"laplace"}},
      KernelNode{"rot_prev", id3, cfg, "u", "u_prev", CombineOp::assign, 1, {}},
      KernelNode{"rot_u", id3, cfg, "u_next", "u", CombineOp::assign, 1,
                 {"damp"}},
  };
  p.steps = 3;
  p.validate();

  const auto want = reference_run_program(p);
  StencilEngine engine({.workers = 1});
  JobResult r = engine.run(JobSpec(std::make_shared<const ProgramSpec>(p)));
  expect_fields_identical(r.fields, want);
  EXPECT_EQ(engine.buffer_pool().outstanding(), 0);
}

TEST(ProgramExecution, SingleStencilAdapterMatchesDirectRunBitExact) {
  const TapSet taps = StarStencil::make_benchmark(2, 2, 7).to_taps();
  const AcceleratorConfig cfg = base_config(2, 2);
  Grid2D<float> input(48, 30);
  input.fill_random(31, -1.0f, 1.0f);
  const int iters = 5;

  StencilEngine engine({.workers = 1});
  JobResult direct =
      engine.run(JobSpec(taps, cfg, Grid2D<float>(input), iters));

  auto program = std::make_shared<const ProgramSpec>(
      single_stencil_program(taps, cfg, Grid2D<float>(input), iters));
  JobResult via_program = engine.run(JobSpec(program));
  EXPECT_TRUE(compare_exact(std::get<Grid2D<float>>(via_program.field("u")),
                            direct.grid2d())
                  .identical());
  EXPECT_EQ(engine.buffer_pool().outstanding(), 0);
}

TEST(ProgramExecution, ProgramThroughClusterBitExactAndZeroLeakedLeases) {
  auto program =
      std::make_shared<const ProgramSpec>(make_fdtd_program(25, 17, 3));
  const auto want = reference_run_program(*program);

  EngineCluster cluster({.shards = 2});
  // Repeated submissions of one program route to one shard (fingerprint
  // affinity) and all match the golden model.
  const int shard0 = cluster.route_shard(JobSpec(program));
  for (int i = 0; i < 3; ++i) {
    JobSpec spec(program);
    spec.tenant = "prog";
    EXPECT_EQ(cluster.route_shard(spec), shard0);
    JobHandle h = cluster.submit(std::move(spec));
    JobResult& r = h.wait();
    expect_fields_identical(r.fields, want);
  }
  cluster.wait_idle();
  for (int k = 0; k < cluster.shards(); ++k) {
    EXPECT_EQ(cluster.shard(k).buffer_pool().outstanding(), 0)
        << "shard " << k << " leaked leases";
  }
}

TEST(ProgramExecution, ChunkedDeliveryStreamsFieldsInDeclarationOrder) {
  auto program =
      std::make_shared<const ProgramSpec>(make_fdtd_program(19, 9, 2));
  const auto want = reference_run_program(*program);

  struct Seen {
    std::string field;
    std::int64_t start, count, index;
    bool last;
  };
  std::vector<Seen> chunks;
  JobSpec spec(program);
  spec.chunk_values = 19 * 3;  // 3 rows per band: several bands per field
  spec.sink_only = true;
  spec.sink = [&](const ResultChunk& c) {
    chunks.push_back({c.field, c.start, c.count, c.index, c.last});
  };
  StencilEngine engine({.workers = 1});
  JobResult r = engine.run(std::move(spec));
  EXPECT_TRUE(r.fields.empty());  // sink_only drops the payload

  ASSERT_FALSE(chunks.empty());
  EXPECT_EQ(r.chunks_delivered, std::int64_t(chunks.size()));
  // Fields arrive in declaration order, bands cover each exactly once,
  // the index is continuous across fields, and only the final band of
  // the final field is marked last.
  std::vector<std::string> field_order;
  std::int64_t next_row = 0;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const Seen& c = chunks[i];
    EXPECT_EQ(c.index, std::int64_t(i));
    if (field_order.empty() || field_order.back() != c.field) {
      field_order.push_back(c.field);
      next_row = 0;
    }
    EXPECT_EQ(c.start, next_row);
    next_row += c.count;
    EXPECT_EQ(c.last, i + 1 == chunks.size());
  }
  const std::vector<std::string> want_order = {"ez", "hx", "hy"};
  EXPECT_EQ(field_order, want_order);
  EXPECT_EQ(next_row, 9);  // the last field was fully covered
}

// ---------------------------------------------------------------------------
// Tuner integration (satellite: per-node tuning reuse)

TEST(ProgramTuning, OneTunerCacheHitPerNodeAfterFirstRun) {
  EngineOptions eo;
  eo.workers = 1;
  eo.autotune = AutotuneMode::search;
  eo.tuning_cache_path = "";  // in-memory only
  eo.autotune_probe_cells = 4 * 1024;
  StencilEngine engine(eo);

  // Four nodes with four distinct tap sets: four distinct plans, so the
  // first run probes each once and every later run hits the tuner cache
  // exactly once per node -- independent of the step count, because the
  // executor resolves plans once per run, not once per step.
  auto program =
      std::make_shared<const ProgramSpec>(make_fdtd_program(33, 21, 5));
  const auto want = reference_run_program(*program);

  JobResult first = engine.run(JobSpec(program));
  expect_fields_identical(first.fields, want);
  const EngineStats after_first = engine.stats();
  EXPECT_EQ(after_first.tuner_cache_misses, 4);  // one probe per node
  EXPECT_EQ(after_first.tuner_search_runs, 4);
  EXPECT_FALSE(first.plan_cache_hit);
  EXPECT_TRUE(first.plan_tuned);

  JobResult second = engine.run(JobSpec(program));
  expect_fields_identical(second.fields, want);
  const EngineStats after_second = engine.stats();
  EXPECT_EQ(after_second.tuner_cache_misses, 4);  // no new probes
  EXPECT_EQ(after_second.tuner_cache_hits - after_first.tuner_cache_hits, 4);
  EXPECT_TRUE(second.plan_cache_hit);
  EXPECT_EQ(engine.buffer_pool().outstanding(), 0);
}

// ---------------------------------------------------------------------------
// Observability

TEST(ProgramMetrics, NodeAndStepCountersTick) {
  StencilEngine engine({.workers = 1});
  auto program =
      std::make_shared<const ProgramSpec>(make_fdtd_program(19, 9, 3));
  JobResult r = engine.run(JobSpec(program));
  MetricsRegistry& m = engine.telemetry().metrics();
  EXPECT_EQ(m.counter("engine.program.nodes_scheduled").value(), 4 * 3);
  EXPECT_EQ(m.counter("engine.program.steps").value(), 3);
}

// ---------------------------------------------------------------------------
// Front-door validation of program jobs

TEST(ProgramJobSpec, RejectsUnsupportedKnobs) {
  auto program =
      std::make_shared<const ProgramSpec>(make_fdtd_program(16, 12, 1));
  {
    JobSpec spec(program);
    spec.backend = ExecutionBackend::concurrent;
    EXPECT_THROW(validate_job_spec(spec), ConfigError);
  }
  {
    JobSpec spec(program);
    spec.boards = 2;
    EXPECT_THROW(validate_job_spec(spec), ConfigError);
  }
  {
    // Invalid programs are rejected at submission, not at execution.
    ProgramSpec bad = make_fdtd_program(16, 12, 1);
    bad.nodes[0].after = {"ez_y"};
    JobSpec spec(std::make_shared<const ProgramSpec>(std::move(bad)));
    EXPECT_THROW(validate_job_spec(spec), ConfigError);
  }
}

}  // namespace
}  // namespace fpga_stencil
