// Tests for a single Processing Element: stream alignment, warm-up,
// pass-through delay, and one-stage equivalence with the reference.
#include <gtest/gtest.h>

#include <vector>

#include "pipeline/processing_element.hpp"
#include "stencil/reference.hpp"

namespace fpga_stencil {
namespace {

AcceleratorConfig cfg2d(int rad, std::int64_t bx, int pv, int pt) {
  AcceleratorConfig c;
  c.dims = 2;
  c.radius = rad;
  c.bsize_x = bx;
  c.parvec = pv;
  c.partime = pt;
  return c;
}

/// Streams a 2D grid through one stage-0 PE in a single block whose origin
/// is -halo (so global x == x_rel - halo), and returns the emitted stream.
std::vector<float> stream_through_pe(ProcessingElement& pe,
                                     const Grid2D<float>& g,
                                     const AcceleratorConfig& cfg,
                                     bool passthrough = false) {
  BlockContext ctx;
  ctx.block_x0 = -cfg.halo();
  ctx.nx = g.nx();
  ctx.ny = g.ny();
  ctx.passthrough = passthrough;
  pe.begin_block(ctx);
  const std::int64_t rows = g.ny() + cfg.radius;  // one stage of drain
  const std::int64_t vecs = rows * cfg.bsize_x / cfg.parvec;
  std::vector<float> out(static_cast<std::size_t>(vecs * cfg.parvec));
  std::vector<float> in(static_cast<std::size_t>(cfg.parvec));
  for (std::int64_t q = 0; q < vecs; ++q) {
    const std::int64_t flat = q * cfg.parvec;
    const std::int64_t y = flat / cfg.bsize_x;
    const std::int64_t xr = flat % cfg.bsize_x;
    for (std::int64_t l = 0; l < cfg.parvec; ++l) {
      const std::int64_t xg = ctx.block_x0 + xr + l;
      in[std::size_t(l)] =
          (xg >= 0 && xg < g.nx() && y < g.ny()) ? g.at(xg, y) : 0.0f;
    }
    pe.process_vector(
        q, in, std::span<float>(out.data() + flat, std::size_t(cfg.parvec)));
  }
  return out;
}

TEST(ProcessingElement, ConstructionValidation) {
  const StarStencil s = StarStencil::make_benchmark(2, 2);
  const AcceleratorConfig c = cfg2d(2, 32, 4, 2);
  EXPECT_NO_THROW(ProcessingElement(s, c, 0));
  EXPECT_NO_THROW(ProcessingElement(s, c, 1));
  EXPECT_THROW(ProcessingElement(s, c, 2), ConfigError);  // stage >= partime
  EXPECT_THROW(ProcessingElement(s, c, -1), ConfigError);
  const StarStencil wrong = StarStencil::make_benchmark(2, 3);
  EXPECT_THROW(ProcessingElement(wrong, c, 0), ConfigError);
}

TEST(ProcessingElement, WarmupEmitsZeros) {
  const StarStencil s = StarStencil::make_benchmark(2, 1);
  const AcceleratorConfig c = cfg2d(1, 8, 4, 1);
  ProcessingElement pe(s, c, 0);
  BlockContext ctx;
  ctx.block_x0 = 0;
  ctx.nx = 8;
  ctx.ny = 8;
  pe.begin_block(ctx);
  std::vector<float> in(4, 1.0f), out(4, -1.0f);
  // The first rad*row_cells/parvec = 2 vectors precede a full window.
  pe.process_vector(0, in, out);
  EXPECT_EQ(out, std::vector<float>(4, 0.0f));
  out.assign(4, -1.0f);
  pe.process_vector(1, in, out);
  EXPECT_EQ(out, std::vector<float>(4, 0.0f));
}

TEST(ProcessingElement, VectorWidthMismatchThrows) {
  const StarStencil s = StarStencil::make_benchmark(2, 1);
  const AcceleratorConfig c = cfg2d(1, 8, 4, 1);
  ProcessingElement pe(s, c, 0);
  BlockContext ctx;
  ctx.block_x0 = 0;
  ctx.nx = 8;
  ctx.ny = 8;
  pe.begin_block(ctx);
  std::vector<float> in(2), out(4);
  EXPECT_THROW(pe.process_vector(0, in, out), std::logic_error);
}

class SingleStage2D : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SingleStage2D, MatchesReferenceOneStep) {
  const auto [rad, parvec] = GetParam();
  const StarStencil s = StarStencil::make_benchmark(2, rad, 13);
  const AcceleratorConfig c = cfg2d(rad, 64, parvec, 1);
  Grid2D<float> g(48, 20);
  g.fill_random(55);
  Grid2D<float> want(48, 20);
  reference_step(s, g, want);

  ProcessingElement pe(s, c, 0);
  const std::vector<float> out = stream_through_pe(pe, g, c);

  // Emitted stream position p carries the center at flat p with one stage
  // of lag: global row = row(p) - rad, global x = block_x0 + x_rel. With
  // nx <= bsize - 2*rad every in-grid center is trustworthy after stage 0.
  ASSERT_LE(g.nx(), c.bsize_x - 2 * rad);
  std::int64_t checked = 0;
  for (std::int64_t p = 0; p < std::int64_t(out.size()); ++p) {
    const std::int64_t yg = p / c.bsize_x - rad;
    const std::int64_t xg = -c.halo() + p % c.bsize_x;
    if (yg < 0 || yg >= g.ny() || xg < 0 || xg >= g.nx()) continue;
    ASSERT_EQ(out[std::size_t(p)], want.at(xg, yg))
        << "rad=" << rad << " parvec=" << parvec << " at (" << xg << ","
        << yg << ")";
    ++checked;
  }
  EXPECT_EQ(checked, g.nx() * g.ny());
}

INSTANTIATE_TEST_SUITE_P(Sweep, SingleStage2D,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(1, 2, 4, 8)));

TEST(ProcessingElement, PassthroughDelaysByRadRows) {
  const int rad = 2;
  const AcceleratorConfig c = cfg2d(rad, 16, 4, 1);
  const StarStencil s = StarStencil::make_benchmark(2, rad);
  Grid2D<float> g(8, 10);
  g.fill_random(77);

  ProcessingElement pe(s, c, 0);
  const std::vector<float> out =
      stream_through_pe(pe, g, c, /*passthrough=*/true);

  // A pass-through stage emits its input delayed by rad rows: output at
  // stream flat p equals input at flat p - rad*row_cells.
  const std::int64_t lag = rad * c.row_cells();
  for (std::int64_t p = 0; p < std::int64_t(out.size()); ++p) {
    const std::int64_t src = p - lag;
    float want = 0.0f;
    if (src >= 0) {
      const std::int64_t y = src / c.bsize_x;
      const std::int64_t xg = -c.halo() + src % c.bsize_x;
      want = (xg >= 0 && xg < g.nx() && y < g.ny()) ? g.at(xg, y) : 0.0f;
    }
    ASSERT_EQ(out[std::size_t(p)], want) << "p=" << p;
  }
}

TEST(ProcessingElement, OutOfGridCentersEmitZero) {
  // Grid narrower than the block: centers beyond nx must produce zeros.
  const AcceleratorConfig c = cfg2d(1, 16, 4, 1);
  const StarStencil s = StarStencil::make_benchmark(2, 1);
  Grid2D<float> g(5, 6, 1.0f);
  ProcessingElement pe(s, c, 0);
  const std::vector<float> out = stream_through_pe(pe, g, c);
  for (std::int64_t p = 0; p < std::int64_t(out.size()); ++p) {
    const std::int64_t yg = p / c.bsize_x - 1;
    const std::int64_t xg = -c.halo() + p % c.bsize_x;
    if (xg < 0 || xg >= g.nx() || yg < 0 || yg >= g.ny()) {
      ASSERT_EQ(out[std::size_t(p)], 0.0f) << "p=" << p;
    }
  }
}

TEST(ProcessingElement, ClampedTapContainment) {
  // The invariant that makes in-PE boundary handling sound: for an in-grid
  // center, the clamped neighbor coordinate never leaves [center - rad,
  // center + rad] in any axis.
  for (int rad = 1; rad <= 8; ++rad) {
    for (std::int64_t n : {1, 2, 5, 100}) {
      for (std::int64_t center = 0; center < n; ++center) {
        for (int i = 1; i <= rad; ++i) {
          const std::int64_t lo = clamp_index(center - i, 0, n - 1);
          const std::int64_t hi = clamp_index(center + i, 0, n - 1);
          ASSERT_GE(lo, center - rad);
          ASSERT_LE(lo, center + rad);
          ASSERT_GE(hi, center - rad);
          ASSERT_LE(hi, center + rad);
        }
      }
    }
  }
}

}  // namespace
}  // namespace fpga_stencil
