// Tests for the star-stencil definitions, Table I characteristics, and the
// naive reference executors.
#include <gtest/gtest.h>

#include <cmath>

#include "grid/grid_compare.hpp"
#include "stencil/characteristics.hpp"
#include "stencil/reference.hpp"
#include "stencil/star_stencil.hpp"

namespace fpga_stencil {
namespace {

TEST(DirectionOffset, AllAxes) {
  EXPECT_EQ(direction_offset(Direction::kWest, 3).dx, -3);
  EXPECT_EQ(direction_offset(Direction::kEast, 2).dx, 2);
  EXPECT_EQ(direction_offset(Direction::kSouth, 1).dy, -1);
  EXPECT_EQ(direction_offset(Direction::kNorth, 4).dy, 4);
  EXPECT_EQ(direction_offset(Direction::kBelow, 2).dz, -2);
  EXPECT_EQ(direction_offset(Direction::kAbove, 1).dz, 1);
  // Exactly one component is nonzero for a star stencil.
  for (Direction d : kDirections3D) {
    const NeighborOffset o = direction_offset(d, 2);
    EXPECT_EQ((o.dx != 0) + (o.dy != 0) + (o.dz != 0), 1);
  }
}

TEST(StarStencil, ConstructionValidation) {
  EXPECT_THROW(StarStencil(4, 1, 0.5f, {}), ConfigError);  // bad dims
  EXPECT_THROW(StarStencil(2, 0, 0.5f, {}), ConfigError);  // bad radius
  // Wrong number of direction rows.
  EXPECT_THROW(StarStencil(2, 1, 0.5f, {{0.1f}, {0.1f}}), ConfigError);
  // Wrong number of distances in a row.
  EXPECT_THROW(
      StarStencil(2, 2, 0.5f, {{0.1f}, {0.1f}, {0.1f}, {0.1f}}),
      ConfigError);
}

TEST(StarStencil, BenchmarkCoefficientsSumToOne) {
  for (int dims : {2, 3}) {
    for (int rad = 1; rad <= 6; ++rad) {
      const StarStencil s = StarStencil::make_benchmark(dims, rad);
      double sum = s.center();
      for (int i = 1; i <= rad; ++i) {
        for (int d = 0; d < s.direction_count(); ++d) {
          sum += s.coeff(static_cast<Direction>(d), i);
        }
      }
      EXPECT_NEAR(sum, 1.0, 1e-4) << "dims=" << dims << " rad=" << rad;
    }
  }
}

TEST(StarStencil, BenchmarkSeedsVaryCoefficients) {
  const StarStencil a = StarStencil::make_benchmark(2, 2, 1);
  const StarStencil b = StarStencil::make_benchmark(2, 2, 2);
  EXPECT_NE(a.coeff(Direction::kWest, 1), b.coeff(Direction::kWest, 1));
}

TEST(StarStencil, SharedCoefficientUniform) {
  const StarStencil s = StarStencil::make_shared_coefficient(3, 3);
  const float c = s.coeff(Direction::kWest, 1);
  for (int i = 1; i <= 3; ++i) {
    for (Direction d : kDirections3D) EXPECT_EQ(s.coeff(d, i), c);
  }
}

TEST(StarStencil, CoeffRangeChecks) {
  const StarStencil s = StarStencil::make_benchmark(2, 2);
  EXPECT_THROW((void)s.coeff(Direction::kWest, 0), ConfigError);
  EXPECT_THROW((void)s.coeff(Direction::kWest, 3), ConfigError);
  EXPECT_THROW((void)s.coeff(Direction::kBelow, 1), ConfigError);  // 3D in 2D
}

TEST(StarStencil, ApplyPointInterior2D) {
  // Hand-check a radius-1 2D stencil at an interior point.
  const StarStencil s(2, 1, 0.5f, {{0.1f}, {0.2f}, {0.3f}, {0.4f}});
  Grid2D<float> g(3, 3, 0.0f);
  g.at(1, 1) = 1.0f;
  g.at(0, 1) = 2.0f;  // west
  g.at(2, 1) = 3.0f;  // east
  g.at(1, 0) = 4.0f;  // south
  g.at(1, 2) = 5.0f;  // north
  const float expect = 0.5f * 1.0f + 0.1f * 2.0f + 0.2f * 3.0f + 0.3f * 4.0f +
                       0.4f * 5.0f;
  EXPECT_FLOAT_EQ(s.apply_point(g, 1, 1), expect);
}

TEST(StarStencil, ApplyPointClampsAtCorner) {
  const StarStencil s(2, 1, 0.5f, {{0.1f}, {0.2f}, {0.3f}, {0.4f}});
  Grid2D<float> g(2, 2, 0.0f);
  g.at(0, 0) = 1.0f;
  g.at(1, 0) = 2.0f;
  g.at(0, 1) = 3.0f;
  // At (0,0): west clamps to self, south clamps to self.
  const float expect =
      0.5f * 1.0f + 0.1f * 1.0f + 0.2f * 2.0f + 0.3f * 1.0f + 0.4f * 3.0f;
  EXPECT_FLOAT_EQ(s.apply_point(g, 0, 0), expect);
}

TEST(StarStencil, ApplyPointDimsMismatchThrows) {
  const StarStencil s2 = StarStencil::make_benchmark(2, 1);
  Grid3D<float> g3(2, 2, 2);
  EXPECT_THROW((void)s2.apply_point(g3, 0, 0, 0), std::logic_error);
}

// --- Table I characteristics (the first reproduced artifact) ---

struct CharCase {
  int dims;
  int radius;
  std::int64_t flop;
  double flop_byte;
};

class CharacteristicsTable : public ::testing::TestWithParam<CharCase> {};

TEST_P(CharacteristicsTable, MatchesPaperTable1) {
  const CharCase c = GetParam();
  const StencilCharacteristics sc = stencil_characteristics(c.dims, c.radius);
  EXPECT_EQ(sc.flop_per_cell, c.flop);
  EXPECT_EQ(sc.bytes_per_cell, 8);
  EXPECT_DOUBLE_EQ(sc.flop_per_byte, c.flop_byte);
  EXPECT_EQ(sc.fmul_per_cell, sc.fadd_per_cell + 1);
  EXPECT_EQ(sc.dsp_per_cell_shared, sc.dsp_per_cell - 1);
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable1, CharacteristicsTable,
    ::testing::Values(CharCase{2, 1, 9, 1.125}, CharCase{2, 2, 17, 2.125},
                      CharCase{2, 3, 25, 3.125}, CharCase{2, 4, 33, 4.125},
                      CharCase{3, 1, 13, 1.625}, CharCase{3, 2, 25, 3.125},
                      CharCase{3, 3, 37, 4.625}, CharCase{3, 4, 49, 6.125}));

TEST(Characteristics, DspCountFormulas) {
  // Section V.A: 4*rad+1 DSPs per 2D cell update, 6*rad+1 per 3D.
  for (int rad = 1; rad <= 8; ++rad) {
    EXPECT_EQ(stencil_characteristics(2, rad).dsp_per_cell, 4 * rad + 1);
    EXPECT_EQ(stencil_characteristics(3, rad).dsp_per_cell, 6 * rad + 1);
  }
}

TEST(Characteristics, FlopToByteGrowsWithRadius) {
  // Table I observation: higher-order stencils are less memory-bound.
  for (int dims : {2, 3}) {
    double prev = 0.0;
    for (int rad = 1; rad <= 8; ++rad) {
      const double r = stencil_characteristics(dims, rad).flop_per_byte;
      EXPECT_GT(r, prev);
      prev = r;
    }
  }
}

// --- reference executors ---

TEST(Reference, ConstantFieldStaysConstantForNormalizedStencil) {
  // Coefficients sum to 1, so a constant field is (nearly) a fixed point;
  // clamping makes the boundary exact too.
  const StarStencil s = StarStencil::make_benchmark(2, 3);
  Grid2D<float> g(16, 12, 2.0f);
  Grid2D<float> out(16, 12);
  reference_step(s, g, out);
  for (std::int64_t y = 0; y < 12; ++y) {
    for (std::int64_t x = 0; x < 16; ++x) {
      EXPECT_NEAR(out.at(x, y), 2.0f, 2e-5f);
    }
  }
}

TEST(Reference, IdentityStencilCopies) {
  // center = 1, all neighbor coefficients 0.
  const StarStencil s(2, 2, 1.0f,
                      {{0.f, 0.f}, {0.f, 0.f}, {0.f, 0.f}, {0.f, 0.f}});
  Grid2D<float> g(9, 7);
  g.fill_random(3);
  Grid2D<float> before = g;
  reference_run(s, g, 5);
  EXPECT_TRUE(compare_exact(g, before).identical());
}

TEST(Reference, LinearityInInput) {
  // reference(a*x) == a * reference(x) for the linear stencil operator.
  const StarStencil s = StarStencil::make_benchmark(3, 2);
  Grid3D<float> x(7, 6, 5);
  x.fill_random(11, 0.0f, 0.5f);
  Grid3D<float> x2(7, 6, 5);
  for (std::int64_t i = 0; i < std::int64_t(x.size()); ++i) {
    x2.data()[i] = 2.0f * x.data()[i];
  }
  Grid3D<float> ox(7, 6, 5), ox2(7, 6, 5);
  reference_step(s, x, ox);
  reference_step(s, x2, ox2);
  for (std::int64_t i = 0; i < std::int64_t(x.size()); ++i) {
    EXPECT_NEAR(ox2.data()[i], 2.0f * ox.data()[i], 1e-5f);
  }
}

TEST(Reference, ZeroIterationsIsNoop) {
  const StarStencil s = StarStencil::make_benchmark(2, 1);
  Grid2D<float> g(5, 5);
  g.fill_random(1);
  Grid2D<float> before = g;
  reference_run(s, g, 0);
  EXPECT_TRUE(compare_exact(g, before).identical());
}

TEST(Reference, MultiStepMatchesRepeatedSingleStep) {
  const StarStencil s = StarStencil::make_benchmark(3, 2);
  Grid3D<float> a(6, 5, 4);
  a.fill_random(17);
  Grid3D<float> b = a;
  reference_run(s, a, 3);
  Grid3D<float> tmp(6, 5, 4);
  for (int t = 0; t < 3; ++t) {
    reference_step(s, b, tmp);
    std::swap(b, tmp);
  }
  EXPECT_TRUE(compare_exact(a, b).identical());
}

TEST(Reference, BoundedOverManyIterations) {
  // Convex-combination stencil: values stay within the initial range.
  const StarStencil s = StarStencil::make_benchmark(2, 4);
  Grid2D<float> g(20, 20);
  g.fill_random(23, 0.0f, 1.0f);
  reference_run(s, g, 50);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_GE(g.data()[i], -1e-4f);
    EXPECT_LE(g.data()[i], 1.0f + 1e-4f);
    EXPECT_TRUE(std::isfinite(g.data()[i]));
  }
}

}  // namespace
}  // namespace fpga_stencil
