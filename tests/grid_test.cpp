// Unit tests for the grid containers and comparison utilities.
#include <gtest/gtest.h>

#include <cmath>

#include "grid/grid.hpp"
#include "grid/grid_compare.hpp"

namespace fpga_stencil {
namespace {

TEST(Grid2D, RowMajorLayout) {
  Grid2D<float> g(4, 3);
  g.at(1, 2) = 7.0f;
  EXPECT_EQ(g.data()[2 * 4 + 1], 7.0f);
  EXPECT_EQ(g.size(), 12u);
}

TEST(Grid2D, RejectsNonPositiveShape) {
  EXPECT_THROW(Grid2D<float>(0, 3), ConfigError);
  EXPECT_THROW(Grid2D<float>(3, -1), ConfigError);
}

TEST(Grid2D, ClampedAccessFallsBackOnBorder) {
  Grid2D<float> g(3, 3);
  for (std::int64_t y = 0; y < 3; ++y) {
    for (std::int64_t x = 0; x < 3; ++x) g.at(x, y) = float(10 * y + x);
  }
  EXPECT_EQ(g.at_clamped(-5, 1), g.at(0, 1));
  EXPECT_EQ(g.at_clamped(7, 1), g.at(2, 1));
  EXPECT_EQ(g.at_clamped(1, -1), g.at(1, 0));
  EXPECT_EQ(g.at_clamped(1, 9), g.at(1, 2));
  EXPECT_EQ(g.at_clamped(-2, -2), g.at(0, 0));  // corner
}

TEST(Grid2D, InBounds) {
  Grid2D<float> g(3, 2);
  EXPECT_TRUE(g.in_bounds(0, 0));
  EXPECT_TRUE(g.in_bounds(2, 1));
  EXPECT_FALSE(g.in_bounds(3, 0));
  EXPECT_FALSE(g.in_bounds(0, 2));
  EXPECT_FALSE(g.in_bounds(-1, 0));
}

TEST(Grid2D, FillRandomDeterministic) {
  Grid2D<float> a(8, 8), b(8, 8);
  a.fill_random(5);
  b.fill_random(5);
  EXPECT_TRUE(compare_exact(a, b).identical());
  b.fill_random(6);
  EXPECT_FALSE(compare_exact(a, b).identical());
}

TEST(Grid3D, RowMajorLayout) {
  Grid3D<float> g(4, 3, 2);
  g.at(1, 2, 1) = 9.0f;
  EXPECT_EQ(g.data()[(1 * 3 + 2) * 4 + 1], 9.0f);
  EXPECT_EQ(g.size(), 24u);
}

TEST(Grid3D, ClampedAccess) {
  Grid3D<float> g(2, 2, 2);
  for (std::int64_t z = 0; z < 2; ++z) {
    for (std::int64_t y = 0; y < 2; ++y) {
      for (std::int64_t x = 0; x < 2; ++x) {
        g.at(x, y, z) = float(100 * z + 10 * y + x);
      }
    }
  }
  EXPECT_EQ(g.at_clamped(-1, 0, 0), g.at(0, 0, 0));
  EXPECT_EQ(g.at_clamped(0, 5, 0), g.at(0, 1, 0));
  EXPECT_EQ(g.at_clamped(0, 0, -9), g.at(0, 0, 0));
  EXPECT_EQ(g.at_clamped(5, 5, 5), g.at(1, 1, 1));
}

TEST(Compare, ExactDetectsSingleMismatch) {
  Grid2D<float> a(5, 5), b(5, 5);
  a.fill_random(1);
  b = a;
  b.at(3, 2) += 1e-7f;
  const CompareResult r = compare_exact(a, b);
  EXPECT_EQ(r.mismatches, 1u);
  EXPECT_EQ(r.first_bad_x, 3);
  EXPECT_EQ(r.first_bad_y, 2);
  EXPECT_FALSE(r.identical());
  EXPECT_NE(r.summary().find("1 mismatches"), std::string::npos);
}

TEST(Compare, ExactTreatsNanPairsEqual) {
  Grid2D<float> a(2, 2, std::nanf("")), b(2, 2, std::nanf(""));
  EXPECT_TRUE(compare_exact(a, b).identical());
}

TEST(Compare, UlpsToleratesLastPlace) {
  Grid2D<float> a(2, 2, 1.0f), b(2, 2, 1.0f);
  b.at(0, 0) = std::nextafter(1.0f, 2.0f);
  EXPECT_FALSE(compare_exact(a, b).identical());
  EXPECT_TRUE(compare_ulps(a, b, 1).identical());
  EXPECT_FALSE(compare_ulps(a, b, 0).identical());
}

TEST(Compare, UlpsSignCrossingsAreFar) {
  Grid2D<float> a(1, 1, 1.0f), b(1, 1, -1.0f);
  EXPECT_FALSE(compare_ulps(a, b, 1000).identical());
}

TEST(Compare, ZeroSignsEqual) {
  Grid2D<float> a(1, 1, 0.0f), b(1, 1, -0.0f);
  EXPECT_TRUE(compare_ulps(a, b, 0).identical());
}

TEST(Compare, RelativeTolerance) {
  Grid3D<float> a(2, 2, 2, 100.0f), b(2, 2, 2, 100.0f);
  b.at(0, 0, 0) = 100.05f;
  EXPECT_TRUE(compare_relative(a, b, 1e-3).identical());
  EXPECT_FALSE(compare_relative(a, b, 1e-6).identical());
}

TEST(Compare, ShapeMismatchThrows) {
  Grid2D<float> a(2, 2), b(3, 2);
  EXPECT_THROW(compare_exact(a, b), ConfigError);
}

TEST(Compare, MaxErrorsReported) {
  Grid2D<float> a(2, 1), b(2, 1);
  a.at(0, 0) = 1.0f;
  b.at(0, 0) = 1.5f;
  a.at(1, 0) = 2.0f;
  b.at(1, 0) = 2.0f;
  const CompareResult r = compare_relative(a, b, 1e-9);
  EXPECT_NEAR(r.max_abs_error, 0.5, 1e-12);
  EXPECT_NEAR(r.max_rel_error, 0.5 / 1.5, 1e-9);
}

}  // namespace
}  // namespace fpga_stencil
