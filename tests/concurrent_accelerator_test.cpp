// Tests for the concurrent (threaded dataflow) execution mode: one thread
// per pipeline stage connected by blocking channels, required to agree
// bit-for-bit with the synchronous simulator and the naive reference.
#include <gtest/gtest.h>

#include "core/concurrent_accelerator.hpp"
#include "grid/grid_compare.hpp"
#include "pipeline/sync_channel.hpp"
#include "stencil/box_stencil.hpp"
#include "stencil/reference.hpp"
#include "telemetry/telemetry.hpp"

namespace fpga_stencil {
namespace {

TEST(SyncChannel, FifoOrderAcrossThreads) {
  SyncChannel<int> ch(4);
  std::thread producer([&] {
    for (int i = 0; i < 1000; ++i) ch.write(i);
    ch.close();
  });
  int expected = 0;
  while (auto v = ch.read()) {
    ASSERT_EQ(*v, expected++);
  }
  EXPECT_EQ(expected, 1000);
  producer.join();
}

TEST(SyncChannel, BackPressureBlocksProducer) {
  SyncChannel<int> ch(2);
  std::atomic<int> produced{0};
  std::thread producer([&] {
    for (int i = 0; i < 10; ++i) {
      ch.write(i);
      produced.fetch_add(1);
    }
    ch.close();
  });
  // Give the producer time: it can buffer at most the capacity.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_LE(produced.load(), 2);
  int n = 0;
  while (ch.read()) ++n;
  EXPECT_EQ(n, 10);
  producer.join();
}

TEST(SyncChannel, CloseDrainsThenEnds) {
  SyncChannel<int> ch(8);
  ch.write(1);
  ch.write(2);
  ch.close();
  EXPECT_EQ(ch.read().value(), 1);
  EXPECT_EQ(ch.read().value(), 2);
  EXPECT_FALSE(ch.read().has_value());
}

class Concurrent2D : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Concurrent2D, MatchesReferenceAndSynchronous) {
  const auto [rad, partime] = GetParam();
  AcceleratorConfig cfg;
  cfg.dims = 2;
  cfg.radius = rad;
  cfg.bsize_x = 48;
  cfg.parvec = 4;
  cfg.partime = partime;
  if (cfg.csize_x() <= 0) GTEST_SKIP();
  const StarStencil s = StarStencil::make_benchmark(2, rad, 77);
  const TapSet taps = s.to_taps();

  Grid2D<float> threaded(100, 33);
  threaded.fill_random(5);
  Grid2D<float> sync_grid = threaded;
  Grid2D<float> want = threaded;

  const int iters = partime + 2;  // includes a partial tail pass
  const RunStats rc =
      run_concurrent(taps, cfg, threaded, iters, RunOptions{.channel_depth = 8});
  StencilAccelerator accel(taps, cfg);
  const RunStats rs = accel.run(sync_grid, iters);
  reference_run(s, want, iters);

  EXPECT_TRUE(compare_exact(threaded, want).identical())
      << "rad=" << rad << " pt=" << partime;
  EXPECT_TRUE(compare_exact(threaded, sync_grid).identical());
  // Both execution modes stream the identical work.
  EXPECT_EQ(rc.cells_streamed, rs.cells_streamed);
  EXPECT_EQ(rc.cells_written, rs.cells_written);
  EXPECT_EQ(rc.vectors_processed, rs.vectors_processed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Concurrent2D,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 2, 4)));

TEST(Concurrent3D, MatchesReference) {
  AcceleratorConfig cfg;
  cfg.dims = 3;
  cfg.radius = 2;
  cfg.bsize_x = 24;
  cfg.bsize_y = 16;
  cfg.parvec = 4;
  cfg.partime = 3;
  const StarStencil s = StarStencil::make_benchmark(3, 2, 13);
  Grid3D<float> g(30, 22, 11);
  g.fill_random(9);
  Grid3D<float> want = g;
  run_concurrent(s.to_taps(), cfg, g, 5, RunOptions{.channel_depth = 16});
  reference_run(s, want, 5);
  EXPECT_TRUE(compare_exact(g, want).identical());
}

TEST(Concurrent, BoxStencilThroughThreads) {
  AcceleratorConfig cfg;
  cfg.dims = 2;
  cfg.radius = 2;
  cfg.bsize_x = 32;
  cfg.parvec = 4;
  cfg.partime = 2;
  const TapSet box = make_box_stencil(2, 2, 44);
  Grid2D<float> g(60, 25);
  g.fill_random(11);
  Grid2D<float> want = g;
  run_concurrent(box, cfg, g, 4);
  reference_run(box, want, 4);
  EXPECT_TRUE(compare_exact(g, want).identical());
}

TEST(Concurrent, TinyChannelDepthStillCorrect) {
  // Depth-1 channels maximize back-pressure; correctness must not depend
  // on buffering.
  AcceleratorConfig cfg;
  cfg.dims = 2;
  cfg.radius = 1;
  cfg.bsize_x = 16;
  cfg.parvec = 2;
  cfg.partime = 3;
  const StarStencil s = StarStencil::make_benchmark(2, 1);
  Grid2D<float> g(30, 14);
  g.fill_random(2);
  Grid2D<float> want = g;
  run_concurrent(s.to_taps(), cfg, g, 3, RunOptions{.channel_depth = 1});
  reference_run(s, want, 3);
  EXPECT_TRUE(compare_exact(g, want).identical());
}

TEST(Concurrent, RunOptionsIsTheOnlyInterface) {
  // PR 5 removed the deprecated depth-parameter shims; the RunOptions
  // form (with designated initializers for the common case) is the one
  // interface and must stay bit-exact with the reference.
  AcceleratorConfig cfg;
  cfg.dims = 2;
  cfg.radius = 1;
  cfg.bsize_x = 16;
  cfg.parvec = 2;
  cfg.partime = 2;
  const StarStencil s = StarStencil::make_benchmark(2, 1);
  Grid2D<float> g(30, 14);
  g.fill_random(2);
  Grid2D<float> want = g;
  run_concurrent(s.to_taps(), cfg, g, 3, RunOptions{.channel_depth = 8});
  reference_run(s, want, 3);
  EXPECT_TRUE(compare_exact(g, want).identical());
}

TEST(Concurrent, ChannelHighWaterWithinConfiguredCapacity) {
  // An instrumented run must report a nonzero queue depth on every
  // inter-stage channel, and the high-water mark can never exceed the
  // configured channel capacity (the OpenCL `depth` attribute).
  AcceleratorConfig cfg;
  cfg.dims = 2;
  cfg.radius = 1;
  cfg.bsize_x = 16;
  cfg.parvec = 2;
  cfg.partime = 3;
  Telemetry telemetry;
  cfg.telemetry = &telemetry;
  const StarStencil s = StarStencil::make_benchmark(2, 1);
  Grid2D<float> g(30, 14);
  g.fill_random(2);

  constexpr std::size_t kDepth = 4;
  run_concurrent(s.to_taps(), cfg, g, 3, RunOptions{.channel_depth = kDepth});

  const MetricsSnapshot snap = telemetry.metrics().snapshot();
  // Channels: read -> PE0 .. PE{partime-1} -> write = partime + 1 lanes.
  for (int i = 0; i <= cfg.partime; ++i) {
    const std::string name =
        "channel." + std::to_string(i) + ".high_water";
    const std::int64_t high_water = snap.value_or(name, -1);
    EXPECT_GE(high_water, 1) << name;
    EXPECT_LE(high_water, std::int64_t(kDepth)) << name;
  }
  EXPECT_GT(snap.value_or("pipeline.cells_written", 0), 0);
}

}  // namespace
}  // namespace fpga_stencil
