// End-to-end resilience tests: injected stalls, hangs, SEUs, transient
// shim failures, and cluster board dropouts, each recovered to an output
// bit-exact with the naive reference.
#include <gtest/gtest.h>

#include <chrono>

#include "cluster/multi_fpga.hpp"
#include "core/concurrent_accelerator.hpp"
#include "fault/checksum.hpp"
#include "fault/fault_injector.hpp"
#include "fault/resilient_runner.hpp"
#include "fpga/device_spec.hpp"
#include "grid/grid_compare.hpp"
#include "ocl/opencl_shim.hpp"
#include "stencil/reference.hpp"
#include "stencil/star_stencil.hpp"

namespace fpga_stencil {
namespace {

using namespace std::chrono_literals;

// The demo workload shared by these tests: small enough to replay a pass
// in milliseconds, deep enough (3 temporal stages, 3 spatial blocks) that
// every stage thread and block boundary is exercised.
AcceleratorConfig test_config() {
  AcceleratorConfig cfg;
  cfg.dims = 2;
  cfg.radius = 2;
  cfg.bsize_x = 48;
  cfg.parvec = 4;
  cfg.partime = 3;
  cfg.validate();
  return cfg;
}

TapSet test_taps() { return StarStencil::make_benchmark(2, 2).to_taps(); }

Grid2D<float> test_grid() {
  Grid2D<float> g(96, 48);
  g.fill_random(17);
  return g;
}

Grid2D<float> reference_result(int iterations) {
  Grid2D<float> want = test_grid();
  reference_run(test_taps(), want, iterations);
  return want;
}

RetryPolicy fast_policy(int max_attempts = 4) {
  RetryPolicy p;
  p.max_attempts = max_attempts;
  p.base_delay = std::chrono::microseconds(1);
  return p;
}

// ------------------------------------------------- deadlock freedom

// Without a watchdog an injected stall would deadlock run_concurrent
// forever; with one, the pass must unwind -- all threads joined (the call
// returns), typed error thrown, input grid untouched.
TEST(Resilience, WatchdogUnwindsStalledReadKernel) {
  FaultInjector fi(FaultPlan::parse("seed=3,channel_stall:n=1"));
  RunOptions opts;
  opts.injector = &fi;
  opts.watchdog_deadline = 200ms;

  Grid2D<float> g = test_grid();
  const std::uint64_t before = grid_checksum(g);
  EXPECT_THROW(run_concurrent(test_taps(), test_config(), g, 3, opts),
               PassAbortedError);
  EXPECT_EQ(grid_checksum(g), before);  // output only commits on success

  // The stall budget is spent: the same injector now runs clean.
  const RunStats stats = run_concurrent(test_taps(), test_config(), g, 3, opts);
  EXPECT_EQ(stats.time_steps, 3);
  EXPECT_TRUE(compare_exact(g, reference_result(3)).identical());
}

TEST(Resilience, WatchdogUnwindsHungProcessingElement) {
  FaultInjector fi(FaultPlan::parse("seed=3,kernel_hang:n=1"));
  RunOptions opts;
  opts.injector = &fi;
  opts.watchdog_deadline = 200ms;

  Grid2D<float> g = test_grid();
  const std::uint64_t before = grid_checksum(g);
  EXPECT_THROW(run_concurrent(test_taps(), test_config(), g, 3, opts),
               PassAbortedError);
  EXPECT_EQ(grid_checksum(g), before);
  EXPECT_EQ(fi.fires(FaultSite::kernel_hang), 1);
}

TEST(Resilience, RunResilientReplaysWatchdogTrips) {
  FaultInjector fi(
      FaultPlan::parse("seed=3,channel_stall:n=1,kernel_hang:n=1"));
  ResilienceOptions opts;
  opts.base.injector = &fi;
  opts.base.watchdog_deadline = 200ms;
  opts.max_pass_attempts = 4;

  Grid2D<float> g = test_grid();
  const RunStats stats = run_resilient(test_taps(), test_config(), g, 12, opts);
  EXPECT_TRUE(compare_exact(g, reference_result(12)).identical());
  EXPECT_EQ(stats.watchdog_trips, 2);  // one stall + one hang, both replayed
  EXPECT_EQ(stats.pass_replays, 2);
  EXPECT_FALSE(stats.degraded_to_reference);
  EXPECT_EQ(stats.faults_injected, 2);
}

// ------------------------------------------------------ SEU detection

TEST(Resilience, BitFlipsDetectedByChecksumAndReplayed) {
  // 150 flips land in the first pass attempt (the budget is exhausted
  // well within one pass's ~5800 PE vectors), corrupt valid output, and
  // the checksum oracle catches it; the replay runs clean.
  FaultInjector fi(FaultPlan::parse("seed=42,seu_bit_flip:n=150"));
  ResilienceOptions opts;
  opts.base.injector = &fi;
  opts.base.watchdog_deadline = 500ms;

  Grid2D<float> g = test_grid();
  const RunStats stats = run_resilient(test_taps(), test_config(), g, 12, opts);
  EXPECT_TRUE(compare_exact(g, reference_result(12)).identical());
  EXPECT_GE(stats.checksum_failures, 1);
  EXPECT_GE(stats.pass_replays, 1);
  EXPECT_EQ(stats.faults_injected, 150);
  EXPECT_FALSE(stats.degraded_to_reference);
}

TEST(Resilience, ChecksumVerificationCanBeDisabled) {
  // Control experiment: with verification off, the same SEU campaign
  // silently corrupts the output -- which is exactly why the oracle
  // defaults to on.
  FaultInjector fi(FaultPlan::parse("seed=42,seu_bit_flip:n=150"));
  ResilienceOptions opts;
  opts.base.injector = &fi;
  opts.base.watchdog_deadline = 500ms;
  opts.verify_checksums = false;

  Grid2D<float> g = test_grid();
  const RunStats stats = run_resilient(test_taps(), test_config(), g, 12, opts);
  EXPECT_EQ(stats.checksum_failures, 0);
  EXPECT_EQ(stats.pass_replays, 0);
  EXPECT_FALSE(compare_exact(g, reference_result(12)).identical());
}

// --------------------------------------------------- graceful degrade

TEST(Resilience, DegradesToReferenceWhenDeviceKeepsFailing) {
  // An unlimited hang budget means every device attempt trips the
  // watchdog; after max_pass_attempts the runner restores the last
  // checkpoint and finishes on the CPU -- still bit-exact.
  FaultInjector fi(FaultPlan::parse("seed=3,kernel_hang:p=1:n=inf"));
  ResilienceOptions opts;
  opts.base.injector = &fi;
  opts.base.watchdog_deadline = 100ms;
  opts.max_pass_attempts = 2;

  Grid2D<float> g = test_grid();
  const RunStats stats = run_resilient(test_taps(), test_config(), g, 12, opts);
  EXPECT_TRUE(stats.degraded_to_reference);
  EXPECT_EQ(stats.watchdog_trips, 2);
  EXPECT_EQ(stats.checkpoint_restores, 1);
  EXPECT_EQ(stats.time_steps, 12);
  EXPECT_TRUE(compare_exact(g, reference_result(12)).identical());
}

TEST(Resilience, CheckpointCadenceCountsSnapshots) {
  ResilienceOptions opts;
  opts.checkpoint_interval = 1;
  Grid2D<float> g = test_grid();
  // Fault-free: 12 iterations = 4 passes of partime 3, one snapshot each,
  // plus the t=0 snapshot.
  const RunStats stats = run_resilient(test_taps(), test_config(), g, 12, opts);
  EXPECT_EQ(stats.checkpoints_saved, 5);
  EXPECT_EQ(stats.faults_injected, 0);
  EXPECT_TRUE(compare_exact(g, reference_result(12)).identical());
}

// ------------------------------------------------------- shim retries

TEST(Resilience, BuildWithRetryAbsorbsTransientFaults) {
  FaultInjector fi(FaultPlan::parse("shim_build:n=2"));
  ScopedFaultInjector scope(fi);
  const ocl::Platform platform = ocl::Platform::intel_fpga_sdk();
  const ocl::Context ctx(platform.device_by_name("Arria"));

  std::int64_t retries = 0;
  const ocl::Program program = ocl::Program::build_with_retry(
      ctx, "-DDIM=2 -DRAD=2 -DBSIZE_X=256 -DPAR_VEC=4 -DPAR_TIME=2",
      fast_policy(), &retries);
  EXPECT_EQ(retries, 2);
  EXPECT_EQ(program.config().radius, 2);
}

TEST(Resilience, BuildWithRetryGivesUpWhenFaultPersists) {
  FaultInjector fi(FaultPlan::parse("shim_build:n=10"));
  ScopedFaultInjector scope(fi);
  const ocl::Platform platform = ocl::Platform::intel_fpga_sdk();
  const ocl::Context ctx(platform.device_by_name("Arria"));
  EXPECT_THROW(ocl::Program::build_with_retry(
                   ctx, "-DDIM=2 -DRAD=2 -DBSIZE_X=256 -DPAR_VEC=4"
                        " -DPAR_TIME=2",
                   fast_policy(3)),
               TransientError);
  EXPECT_EQ(fi.fires(FaultSite::shim_build), 3);  // one per attempt
}

TEST(Resilience, FatalBuildErrorsAreNeverRetried) {
  FaultInjector fi(FaultPlan::parse("shim_build:n=1"));
  ScopedFaultInjector scope(fi);
  const ocl::Platform platform = ocl::Platform::intel_fpga_sdk();
  const ocl::Context ctx(platform.device_by_name("Arria"));
  // Attempt 1 absorbs the injected transient; attempt 2 reaches the
  // malformed option string, which is fatal and must surface as
  // BuildError without burning the remaining retry budget.
  EXPECT_THROW(ocl::Program::build_with_retry(ctx, "not-a-macro",
                                              fast_policy(4)),
               ocl::BuildError);
  EXPECT_EQ(fi.fires(FaultSite::shim_build), 1);
}

TEST(Resilience, TransferFaultsAreRetryable) {
  FaultInjector fi(FaultPlan::parse("shim_transfer:n=1"));
  ScopedFaultInjector scope(fi);
  const ocl::Platform platform = ocl::Platform::intel_fpga_sdk();
  const ocl::Context ctx(platform.device_by_name("Arria"));
  ocl::Buffer buf(ctx, 16);
  ocl::CommandQueue queue(ctx);
  const float src[4] = {1, 2, 3, 4};
  std::int64_t retries = 0;
  retry_transient(fast_policy(),
                  [&] { queue.enqueue_write_buffer(buf, src, 16); }, &retries);
  EXPECT_EQ(retries, 1);
  float back[4] = {0, 0, 0, 0};
  queue.enqueue_read_buffer(buf, back, 16);
  EXPECT_EQ(back[3], 4.0f);
}

// --------------------------------------------------- cluster failover

TEST(Resilience, ClusterSurvivesBoardDropout) {
  FaultInjector fi(
      FaultPlan::parse("seed=11,board_dropout:n=1,link_degrade:n=2"));
  ScopedFaultInjector scope(fi);
  MultiFpgaCluster cluster(4, test_taps(), test_config(), arria10_gx1150(),
                           LinkSpec{});
  EXPECT_EQ(cluster.alive_boards(), 4);

  Grid2D<float> g = test_grid();
  const ClusterStats stats = cluster.run(g, 12);
  // Slab re-partitioning across the survivors is value-transparent.
  EXPECT_TRUE(compare_exact(g, reference_result(12)).identical());
  EXPECT_EQ(stats.board_dropouts, 1);
  EXPECT_EQ(cluster.alive_boards(), 3);
  EXPECT_EQ(stats.pass_replays, 1);
  EXPECT_GE(stats.link_degraded_passes, 1);
  // A degraded link costs modeled time, never correctness.
  EXPECT_GT(stats.exchange_seconds, 0.0);
}

TEST(Resilience, ClusterDropoutsPersistAcrossRuns) {
  FaultInjector fi(FaultPlan::parse("seed=11,board_dropout:n=1"));
  ScopedFaultInjector scope(fi);
  MultiFpgaCluster cluster(3, test_taps(), test_config(), arria10_gx1150(),
                           LinkSpec{});
  Grid2D<float> g = test_grid();
  (void)cluster.run(g, 6);
  EXPECT_EQ(cluster.alive_boards(), 2);
  // A dead board stays dead: the next run starts from the survivors.
  Grid2D<float> h = test_grid();
  const ClusterStats stats = cluster.run(h, 6);
  EXPECT_EQ(stats.board_dropouts, 0);
  EXPECT_TRUE(compare_exact(h, reference_result(6)).identical());
}

// ---------------------------------------------------- whole campaigns

TEST(Resilience, MixedCampaignStaysBitExact) {
  // Four distinct fault sites in one resilient run: both stall classes,
  // SEUs, and (via the scoped injector) transient shim probes before it.
  FaultInjector fi(FaultPlan::parse(
      "seed=42,channel_stall:n=1,kernel_hang:n=1,seu_bit_flip:n=150,"
      "shim_transfer:n=1"));
  ScopedFaultInjector scope(fi);
  EXPECT_THROW(maybe_inject_transient(FaultSite::shim_transfer, "probe"),
               TransientError);

  ResilienceOptions opts;
  opts.base.watchdog_deadline = 250ms;
  opts.max_pass_attempts = 5;
  Grid2D<float> g = test_grid();
  // No explicit opts.base.injector: run_resilient picks up the scoped one.
  const RunStats stats = run_resilient(test_taps(), test_config(), g, 12, opts);
  EXPECT_TRUE(compare_exact(g, reference_result(12)).identical());
  EXPECT_EQ(stats.watchdog_trips, 2);
  EXPECT_GE(stats.checksum_failures, 1);
  EXPECT_GE(stats.pass_replays, 3);
  EXPECT_FALSE(stats.degraded_to_reference);
  EXPECT_EQ(fi.total_fires(), 153);
}

}  // namespace
}  // namespace fpga_stencil
