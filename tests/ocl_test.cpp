// Tests for the OpenCL-style host runtime shim.
#include <gtest/gtest.h>

#include <vector>

#include "grid/grid_compare.hpp"
#include "ocl/opencl_shim.hpp"
#include "stencil/box_stencil.hpp"
#include "stencil/reference.hpp"

namespace fpga_stencil {
namespace {

using ocl::BuildError;
using ocl::BuildOptions;
using ocl::Buffer;
using ocl::CommandQueue;
using ocl::Context;
using ocl::Event;
using ocl::Platform;
using ocl::Program;

TEST(BuildOptions, ParsesMacros) {
  const BuildOptions o =
      BuildOptions::parse("-DDIM=2 -DRAD=3 -DBSIZE_X=4096 -DPAR_VEC=4 "
                          "-DPAR_TIME=28");
  EXPECT_TRUE(o.has("RAD"));
  EXPECT_EQ(o.get_int("RAD"), 3);
  EXPECT_EQ(o.get_int_or("MISSING", 7), 7);
  const AcceleratorConfig cfg = o.to_config();
  EXPECT_EQ(cfg.dims, 2);
  EXPECT_EQ(cfg.bsize_x, 4096);
  EXPECT_EQ(cfg.partime, 28);
}

TEST(BuildOptions, RejectsGarbage) {
  EXPECT_THROW(BuildOptions::parse("-O3"), BuildError);
  EXPECT_THROW(BuildOptions::parse("-D=3"), BuildError);
  EXPECT_THROW(BuildOptions::parse("-DRAD="), BuildError);
  EXPECT_THROW(BuildOptions::parse("RAD=3"), BuildError);
  EXPECT_THROW((void)BuildOptions::parse("-DRAD=abc").get_int("RAD"),
               BuildError);
  EXPECT_THROW((void)BuildOptions::parse("-DRAD=3x").get_int("RAD"),
               BuildError);
  EXPECT_THROW((void)BuildOptions::parse("-DDIM=2").to_config(), BuildError);
}

TEST(Platform, DeviceDiscovery) {
  const Platform p = Platform::intel_fpga_sdk();
  EXPECT_GE(p.devices().size(), 2u);
  EXPECT_EQ(p.device_by_name("Arria 10").spec().dsps, 1518);
  EXPECT_THROW((void)p.device_by_name("Virtex"), BuildError);
}

TEST(Program, BuildSucceedsAndReports) {
  const Platform plat = Platform::intel_fpga_sdk();
  const Context ctx(plat.device_by_name("Arria 10"));
  const Program prog = Program::build(
      ctx, "-DDIM=2 -DRAD=2 -DBSIZE_X=4096 -DPAR_VEC=4 -DPAR_TIME=42");
  EXPECT_EQ(prog.config().radius, 2);
  EXPECT_GT(prog.report().fmax_mhz, 250.0);
  EXPECT_EQ(prog.report().usage.dsps, 1512);
  const std::string summary = prog.report().summary();
  EXPECT_NE(summary.find("DSP"), std::string::npos);
  EXPECT_NE(summary.find("fmax"), std::string::npos);
}

TEST(Program, BuildFailsLikePlaceAndRoute) {
  const Platform plat = Platform::intel_fpga_sdk();
  const Context ctx(plat.device_by_name("Arria 10"));
  // 5*8*64 DSPs needed: over budget.
  EXPECT_THROW(Program::build(ctx, "-DDIM=2 -DRAD=1 -DBSIZE_X=4096 "
                                   "-DPAR_VEC=8 -DPAR_TIME=64"),
               BuildError);
  // Structurally invalid: halo eats the block.
  EXPECT_THROW(Program::build(ctx, "-DDIM=2 -DRAD=4 -DBSIZE_X=64 "
                                   "-DPAR_VEC=4 -DPAR_TIME=22"),
               BuildError);
  // A design too big for Stratix V but fine on Arria 10.
  const Context small(plat.device_by_name("Stratix V"));
  const std::string opts =
      "-DDIM=2 -DRAD=1 -DBSIZE_X=4096 -DPAR_VEC=8 -DPAR_TIME=36";
  EXPECT_NO_THROW(Program::build(ctx, opts));
  EXPECT_THROW(Program::build(small, opts), BuildError);
}

TEST(Buffer, TransfersRoundTrip) {
  const Platform plat = Platform::intel_fpga_sdk();
  const Context ctx(plat.device_by_name("Arria 10"));
  CommandQueue q(ctx);
  Buffer buf(ctx, 16 * sizeof(float));
  std::vector<float> src = {1, 2, 3, 4, 5, 6, 7, 8};
  q.enqueue_write_buffer(buf, src.data(), src.size() * sizeof(float));
  std::vector<float> dst(8, 0.0f);
  q.enqueue_read_buffer(buf, dst.data(), dst.size() * sizeof(float));
  EXPECT_EQ(src, dst);
  EXPECT_THROW(q.enqueue_write_buffer(buf, src.data(), 1024), ConfigError);
  EXPECT_THROW(Buffer(ctx, 0), ConfigError);
}

class OclEndToEnd : public ::testing::Test {
 protected:
  OclEndToEnd()
      : platform_(Platform::intel_fpga_sdk()),
        ctx_(platform_.device_by_name("Arria 10")),
        queue_(ctx_) {}

  Platform platform_;
  Context ctx_;
  CommandQueue queue_;
};

TEST_F(OclEndToEnd, Stencil2DMatchesReference) {
  const Program prog = Program::build(
      ctx_, "-DDIM=2 -DRAD=2 -DBSIZE_X=64 -DPAR_VEC=4 -DPAR_TIME=3");
  const StarStencil s = StarStencil::make_benchmark(2, 2);
  const std::int64_t nx = 90, ny = 31;
  Grid2D<float> grid(nx, ny);
  grid.fill_random(42);
  Grid2D<float> want = grid;
  reference_run(s, want, 5);

  Buffer in(ctx_, std::size_t(nx * ny) * sizeof(float));
  Buffer out(ctx_, std::size_t(nx * ny) * sizeof(float));
  queue_.enqueue_write_buffer(in, grid.data(),
                              std::size_t(nx * ny) * sizeof(float));
  const Event ev = queue_.enqueue_stencil_2d(prog, s, in, out, nx, ny, 5);
  queue_.finish();
  Grid2D<float> got(nx, ny);
  queue_.enqueue_read_buffer(out, got.data(),
                             std::size_t(nx * ny) * sizeof(float));

  EXPECT_TRUE(compare_exact(got, want).identical());
  EXPECT_GT(ev.device_seconds, 0.0);
  EXPECT_GT(ev.device_cycles, 0);
}

TEST_F(OclEndToEnd, Stencil3DMatchesReference) {
  const Program prog =
      Program::build(ctx_, "-DDIM=3 -DRAD=1 -DBSIZE_X=16 -DBSIZE_Y=12 "
                           "-DPAR_VEC=4 -DPAR_TIME=2");
  const StarStencil s = StarStencil::make_benchmark(3, 1);
  const std::int64_t nx = 25, ny = 18, nz = 9;
  const std::size_t bytes = std::size_t(nx * ny * nz) * sizeof(float);
  Grid3D<float> grid(nx, ny, nz);
  grid.fill_random(7);
  Grid3D<float> want = grid;
  reference_run(s, want, 3);

  Buffer in(ctx_, bytes), out(ctx_, bytes);
  queue_.enqueue_write_buffer(in, grid.data(), bytes);
  const Event ev = queue_.enqueue_stencil_3d(prog, s, in, out, nx, ny, nz, 3);
  Grid3D<float> got(nx, ny, nz);
  queue_.enqueue_read_buffer(out, got.data(), bytes);

  EXPECT_TRUE(compare_exact(got, want).identical());
  EXPECT_GT(ev.device_ms(), 0.0);
}

TEST_F(OclEndToEnd, KernelArgMismatchRejected) {
  const Program prog = Program::build(
      ctx_, "-DDIM=2 -DRAD=2 -DBSIZE_X=64 -DPAR_VEC=4 -DPAR_TIME=3");
  const StarStencil wrong_rad = StarStencil::make_benchmark(2, 3);
  Buffer in(ctx_, 1024), out(ctx_, 1024);
  EXPECT_THROW(
      queue_.enqueue_stencil_2d(prog, wrong_rad, in, out, 16, 16, 1),
      BuildError);
  const StarStencil s2 = StarStencil::make_benchmark(2, 2);
  EXPECT_THROW(queue_.enqueue_stencil_3d(prog, StarStencil::make_benchmark(3, 2),
                                         in, out, 8, 8, 4, 1),
               BuildError);
  // Grid larger than the buffers.
  EXPECT_THROW(queue_.enqueue_stencil_2d(prog, s2, in, out, 100, 100, 1),
               ConfigError);
}

TEST_F(OclEndToEnd, TapSetLaunchMatchesReference) {
  const Program prog = Program::build(
      ctx_, "-DDIM=2 -DRAD=1 -DBSIZE_X=32 -DPAR_VEC=4 -DPAR_TIME=2");
  const TapSet box = make_box_stencil(2, 1, 12);
  const std::int64_t nx = 45, ny = 17;
  const std::size_t bytes = std::size_t(nx * ny) * sizeof(float);
  Grid2D<float> grid(nx, ny);
  grid.fill_random(3);
  Grid2D<float> want = grid;
  reference_run(box, want, 4);

  Buffer in(ctx_, bytes), out(ctx_, bytes);
  queue_.enqueue_write_buffer(in, grid.data(), bytes);
  const Event ev =
      queue_.enqueue_stencil_taps_2d(prog, box, in, out, nx, ny, 4);
  Grid2D<float> got(nx, ny);
  queue_.enqueue_read_buffer(out, got.data(), bytes);
  EXPECT_TRUE(compare_exact(got, want).identical());
  EXPECT_GT(ev.device_seconds, 0.0);
}

TEST_F(OclEndToEnd, TapSetLaunch3DMatchesReference) {
  const Program prog =
      Program::build(ctx_, "-DDIM=3 -DRAD=1 -DBSIZE_X=16 -DBSIZE_Y=12 "
                           "-DPAR_VEC=4 -DPAR_TIME=1");
  const TapSet cubic = make_cubic27_stencil();
  const std::int64_t nx = 20, ny = 15, nz = 7;
  const std::size_t bytes = std::size_t(nx * ny * nz) * sizeof(float);
  Grid3D<float> grid(nx, ny, nz);
  grid.fill_random(4);
  Grid3D<float> want = grid;
  reference_run(cubic, want, 3);

  Buffer in(ctx_, bytes), out(ctx_, bytes);
  queue_.enqueue_write_buffer(in, grid.data(), bytes);
  queue_.enqueue_stencil_taps_3d(prog, cubic, in, out, nx, ny, nz, 3);
  Grid3D<float> got(nx, ny, nz);
  queue_.enqueue_read_buffer(out, got.data(), bytes);
  EXPECT_TRUE(compare_exact(got, want).identical());
}

TEST_F(OclEndToEnd, TapSetRadiusOverProgramRadRejected) {
  const Program prog = Program::build(
      ctx_, "-DDIM=2 -DRAD=1 -DBSIZE_X=32 -DPAR_VEC=4 -DPAR_TIME=2");
  const TapSet big = make_box_stencil(2, 2);
  Buffer in(ctx_, 1024), out(ctx_, 1024);
  EXPECT_THROW(
      queue_.enqueue_stencil_taps_2d(prog, big, in, out, 10, 10, 1),
      BuildError);
}

TEST_F(OclEndToEnd, DeviceTimeScalesWithIterations) {
  const Program prog = Program::build(
      ctx_, "-DDIM=2 -DRAD=1 -DBSIZE_X=64 -DPAR_VEC=4 -DPAR_TIME=2");
  const StarStencil s = StarStencil::make_benchmark(2, 1);
  const std::int64_t nx = 64, ny = 64;
  const std::size_t bytes = std::size_t(nx * ny) * sizeof(float);
  Grid2D<float> grid(nx, ny);
  grid.fill_random(1);
  Buffer in(ctx_, bytes), out(ctx_, bytes);
  queue_.enqueue_write_buffer(in, grid.data(), bytes);
  const Event e2 = queue_.enqueue_stencil_2d(prog, s, in, out, nx, ny, 2);
  const Event e8 = queue_.enqueue_stencil_2d(prog, s, in, out, nx, ny, 8);
  EXPECT_NEAR(e8.device_seconds / e2.device_seconds, 4.0, 0.01);
}

}  // namespace
}  // namespace fpga_stencil
