// Tests for the CPU overlapped temporal blocking executor.
#include <gtest/gtest.h>

#include "cpu/temporal_cpu.hpp"
#include "grid/grid_compare.hpp"
#include "stencil/box_stencil.hpp"
#include "stencil/reference.hpp"

namespace fpga_stencil {
namespace {

class TemporalCpu2D
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TemporalCpu2D, BitExactVsReference) {
  const auto [rad, t_block, block_y] = GetParam();
  const TapSet taps =
      StarStencil::make_benchmark(2, rad, 42 + std::uint64_t(rad)).to_taps();
  Grid2D<float> g(65, 41);
  g.fill_random(7);
  Grid2D<float> want = g;
  const int iters = 2 * t_block + 1;  // includes a partial tail pass
  const TemporalCpuResult r =
      temporal_blocked_run_2d(taps, g, iters, block_y, t_block);
  reference_run(taps, want, iters);
  const CompareResult cmp = compare_exact(g, want);
  EXPECT_TRUE(cmp.identical())
      << "rad=" << rad << " T=" << t_block << " by=" << block_y << ": "
      << cmp.summary();
  EXPECT_EQ(r.run.cell_updates, 65 * 41 * std::int64_t(iters));
  EXPECT_GE(r.redundancy(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TemporalCpu2D,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 2, 4),
                                            ::testing::Values(8, 16, 41)));

TEST(TemporalCpu2D, BoxStencilSupported) {
  const TapSet box = make_box_stencil(2, 2, 17);
  Grid2D<float> g(40, 33);
  g.fill_random(5);
  Grid2D<float> want = g;
  temporal_blocked_run_2d(box, g, 5, 8, 2);
  reference_run(box, want, 5);
  EXPECT_TRUE(compare_exact(g, want).identical());
}

TEST(TemporalCpu3D, BitExactVsReference) {
  for (int rad : {1, 2}) {
    for (int t_block : {1, 3}) {
      const TapSet taps =
          StarStencil::make_benchmark(3, rad, 11).to_taps();
      Grid3D<float> g(22, 18, 13);
      g.fill_random(9);
      Grid3D<float> want = g;
      const TemporalCpuResult r =
          temporal_blocked_run_3d(taps, g, 4, 4, t_block);
      reference_run(taps, want, 4);
      EXPECT_TRUE(compare_exact(g, want).identical())
          << "rad=" << rad << " T=" << t_block;
      EXPECT_GE(r.redundancy(), 1.0);
    }
  }
}

TEST(TemporalCpu, RedundancyGrowsWithTBlock) {
  // The cost side of the trade-off: the recomputed halo grows with the
  // number of fused steps.
  const TapSet taps = StarStencil::make_benchmark(2, 2).to_taps();
  double prev = 0.0;
  for (int t : {1, 2, 4}) {
    Grid2D<float> g(64, 48);
    g.fill_random(1);
    const TemporalCpuResult r = temporal_blocked_run_2d(taps, g, 8, 8, t);
    EXPECT_GT(r.redundancy(), prev);
    prev = r.redundancy();
  }
}

TEST(TemporalCpu, TBlockOneMatchesPlainRedundancy) {
  // With one fused step per pass the halo is rad rows: small but nonzero.
  const TapSet taps = StarStencil::make_benchmark(2, 1).to_taps();
  Grid2D<float> g(32, 32);
  g.fill_random(2);
  const TemporalCpuResult r = temporal_blocked_run_2d(taps, g, 4, 16, 1);
  // Two 16-row blocks, 1-row halo per interior seam side (clipped at the
  // grid borders): each block computes 17 rows -> 34/32.
  EXPECT_NEAR(r.redundancy(), 34.0 / 32.0, 1e-9);
}

TEST(TemporalCpu, InvalidInputsThrow) {
  const TapSet taps = StarStencil::make_benchmark(2, 1).to_taps();
  Grid2D<float> g(8, 8);
  EXPECT_THROW(temporal_blocked_run_2d(taps, g, 1, 0, 1), ConfigError);
  EXPECT_THROW(temporal_blocked_run_2d(taps, g, 1, 8, 0), ConfigError);
  EXPECT_THROW(temporal_blocked_run_2d(taps, g, -1, 8, 1), ConfigError);
  const TapSet t3 = StarStencil::make_benchmark(3, 1).to_taps();
  EXPECT_THROW(temporal_blocked_run_2d(t3, g, 1, 8, 1), ConfigError);
}

}  // namespace
}  // namespace fpga_stencil
