// Tests for the on-chip channel FIFO.
#include <gtest/gtest.h>

#include <memory>

#include "pipeline/channel.hpp"

namespace fpga_stencil {
namespace {

TEST(Channel, ConstructionValidation) {
  EXPECT_THROW(Channel<int>(0), ConfigError);
  EXPECT_NO_THROW(Channel<int>(1));
}

TEST(Channel, FifoOrder) {
  Channel<int> ch(4);
  EXPECT_TRUE(ch.try_write(1));
  EXPECT_TRUE(ch.try_write(2));
  EXPECT_TRUE(ch.try_write(3));
  EXPECT_EQ(ch.try_read().value(), 1);
  EXPECT_EQ(ch.try_read().value(), 2);
  EXPECT_EQ(ch.try_read().value(), 3);
  EXPECT_FALSE(ch.try_read().has_value());
}

TEST(Channel, BackPressureAtCapacity) {
  Channel<int> ch(2);
  EXPECT_TRUE(ch.try_write(1));
  EXPECT_TRUE(ch.try_write(2));
  EXPECT_TRUE(ch.full());
  EXPECT_FALSE(ch.try_write(3));  // producer must stall
  EXPECT_EQ(ch.size(), 2u);
  (void)ch.try_read();
  EXPECT_TRUE(ch.try_write(3));
}

TEST(Channel, EmptyAfterDrain) {
  Channel<int> ch(2);
  (void)ch.try_write(5);
  (void)ch.try_read();
  EXPECT_TRUE(ch.empty());
  EXPECT_EQ(ch.size(), 0u);
}

TEST(Channel, CountsTotalWrites) {
  Channel<int> ch(1);
  (void)ch.try_write(1);
  (void)ch.try_read();
  (void)ch.try_write(2);
  (void)ch.try_write(3);  // rejected, must not count
  EXPECT_EQ(ch.total_writes(), 2u);
}

TEST(Channel, MoveOnlyPayload) {
  Channel<std::unique_ptr<int>> ch(1);
  EXPECT_TRUE(ch.try_write(std::make_unique<int>(42)));
  auto out = ch.try_read();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(**out, 42);
}

}  // namespace
}  // namespace fpga_stencil
