// Randomized stress testing of the architecture simulator: many random
// (configuration, grid, iteration, stencil) tuples, every one required to
// be bit-exact against the naive reference. Deterministically seeded.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/stencil_accelerator.hpp"
#include "grid/grid_compare.hpp"
#include "stencil/box_stencil.hpp"
#include "stencil/reference.hpp"

namespace fpga_stencil {
namespace {

constexpr int kCases2D = 40;
constexpr int kCases3D = 25;

AcceleratorConfig random_config(SplitMix64& rng, int dims) {
  AcceleratorConfig cfg;
  cfg.dims = dims;
  cfg.radius = 1 + int(rng.next_below(5));  // 1..5
  static constexpr std::int64_t kBsx[] = {16, 24, 32, 48, 64};
  cfg.bsize_x = kBsx[rng.next_below(5)];
  cfg.bsize_y = dims == 3 ? 8 + std::int64_t(rng.next_below(4)) * 8 : 1;
  static constexpr int kPv[] = {1, 2, 4, 8};
  do {
    cfg.parvec = kPv[rng.next_below(4)];
  } while (cfg.bsize_x % cfg.parvec != 0);
  cfg.partime = 1 + int(rng.next_below(4));  // 1..4
  return cfg;
}

TEST(FuzzAccelerator, Random2DStarCases) {
  SplitMix64 rng(20180521);  // fixed seed: reproducible
  int executed = 0;
  for (int c = 0; c < kCases2D; ++c) {
    const AcceleratorConfig cfg = random_config(rng, 2);
    if (cfg.csize_x() <= 0) continue;
    const std::int64_t nx = 3 + std::int64_t(rng.next_below(120));
    const std::int64_t ny = 1 + std::int64_t(rng.next_below(40));
    const int iters = 1 + int(rng.next_below(7));
    const StarStencil s =
        StarStencil::make_benchmark(2, cfg.radius, 1000 + std::uint64_t(c));

    Grid2D<float> g(nx, ny);
    g.fill_random(rng.next_u64());
    Grid2D<float> want = g;
    StencilAccelerator accel(s, cfg);
    accel.run(g, iters);
    reference_run(s, want, iters);
    const CompareResult cmp = compare_exact(g, want);
    ASSERT_TRUE(cmp.identical())
        << "case " << c << ": " << cfg.describe() << " grid " << nx << "x"
        << ny << " iters " << iters << ": " << cmp.summary();
    ++executed;
  }
  EXPECT_GT(executed, kCases2D / 2);  // most random configs are valid
}

TEST(FuzzAccelerator, Random3DStarCases) {
  SplitMix64 rng(19841984);
  int executed = 0;
  for (int c = 0; c < kCases3D; ++c) {
    const AcceleratorConfig cfg = random_config(rng, 3);
    if (cfg.csize_x() <= 0 || cfg.csize_y() <= 0) continue;
    const std::int64_t nx = 3 + std::int64_t(rng.next_below(40));
    const std::int64_t ny = 2 + std::int64_t(rng.next_below(24));
    const std::int64_t nz = 1 + std::int64_t(rng.next_below(12));
    const int iters = 1 + int(rng.next_below(5));
    const StarStencil s =
        StarStencil::make_benchmark(3, cfg.radius, 2000 + std::uint64_t(c));

    Grid3D<float> g(nx, ny, nz);
    g.fill_random(rng.next_u64());
    Grid3D<float> want = g;
    StencilAccelerator accel(s, cfg);
    accel.run(g, iters);
    reference_run(s, want, iters);
    const CompareResult cmp = compare_exact(g, want);
    ASSERT_TRUE(cmp.identical())
        << "case " << c << ": " << cfg.describe() << " grid " << nx << "x"
        << ny << "x" << nz << " iters " << iters << ": " << cmp.summary();
    ++executed;
  }
  EXPECT_GT(executed, kCases3D / 3);
}

TEST(FuzzAccelerator, RandomBoxCases) {
  SplitMix64 rng(555333);
  int executed = 0;
  for (int c = 0; c < 20; ++c) {
    const int dims = rng.next_below(2) == 0 ? 2 : 3;
    AcceleratorConfig cfg = random_config(rng, dims);
    cfg.radius = 1 + int(rng.next_below(2));  // box taps grow fast
    if (cfg.csize_x() <= 0 || (dims == 3 && cfg.csize_y() <= 0)) continue;
    const TapSet box =
        make_box_stencil(dims, cfg.radius, 3000 + std::uint64_t(c));
    const int iters = 1 + int(rng.next_below(4));
    if (dims == 2) {
      Grid2D<float> g(5 + std::int64_t(rng.next_below(70)),
                      2 + std::int64_t(rng.next_below(20)));
      g.fill_random(rng.next_u64());
      Grid2D<float> want = g;
      StencilAccelerator accel(box, cfg);
      accel.run(g, iters);
      reference_run(box, want, iters);
      ASSERT_TRUE(compare_exact(g, want).identical()) << "case " << c;
    } else {
      Grid3D<float> g(4 + std::int64_t(rng.next_below(24)),
                      3 + std::int64_t(rng.next_below(16)),
                      1 + std::int64_t(rng.next_below(8)));
      g.fill_random(rng.next_u64());
      Grid3D<float> want = g;
      StencilAccelerator accel(box, cfg);
      accel.run(g, iters);
      reference_run(box, want, iters);
      ASSERT_TRUE(compare_exact(g, want).identical()) << "case " << c;
    }
    ++executed;
  }
  EXPECT_GT(executed, 5);
}

}  // namespace
}  // namespace fpga_stencil
