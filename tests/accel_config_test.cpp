// Tests for the accelerator configuration algebra (paper eqs. 2, 6, 7) and
// the blocking plan's streamed-vs-valid accounting.
#include <gtest/gtest.h>

#include "stencil/accel_config.hpp"

namespace fpga_stencil {
namespace {

AcceleratorConfig make2d(int rad, std::int64_t bx, int pv, int pt) {
  AcceleratorConfig c;
  c.dims = 2;
  c.radius = rad;
  c.bsize_x = bx;
  c.parvec = pv;
  c.partime = pt;
  return c;
}

AcceleratorConfig make3d(int rad, std::int64_t bx, std::int64_t by, int pv,
                         int pt) {
  AcceleratorConfig c;
  c.dims = 3;
  c.radius = rad;
  c.bsize_x = bx;
  c.bsize_y = by;
  c.parvec = pv;
  c.partime = pt;
  return c;
}

TEST(AccelConfig, HaloAndCsizeEq2) {
  const AcceleratorConfig c = make2d(2, 4096, 4, 42);
  EXPECT_EQ(c.halo(), 84);
  EXPECT_EQ(c.csize_x(), 4096 - 168);  // paper eq. (2)
  EXPECT_EQ(c.csize_y(), 1);
}

TEST(AccelConfig, ShiftRegisterEq7) {
  // 2D: 2*rad*bsize_x + parvec.
  EXPECT_EQ(make2d(1, 4096, 8, 36).shift_register_cells(), 2 * 4096 + 8);
  EXPECT_EQ(make2d(4, 4096, 4, 22).shift_register_cells(), 8 * 4096 + 4);
  // 3D: 2*rad*bsize_x*bsize_y + parvec.
  EXPECT_EQ(make3d(1, 256, 256, 16, 12).shift_register_cells(),
            2 * 256 * 256 + 16);
  EXPECT_EQ(make3d(2, 256, 128, 16, 6).shift_register_cells(),
            4 * 256 * 128 + 16);
}

TEST(AccelConfig, RowCells) {
  EXPECT_EQ(make2d(1, 64, 4, 1).row_cells(), 64);
  EXPECT_EQ(make3d(1, 32, 16, 4, 1).row_cells(), 32 * 16);
}

TEST(AccelConfig, AlignmentRuleEq6) {
  EXPECT_TRUE(make2d(1, 64, 4, 4).meets_alignment_rule());   // 4*1 % 4 == 0
  EXPECT_TRUE(make2d(2, 64, 4, 6).meets_alignment_rule());   // 12 % 4 == 0
  EXPECT_FALSE(make2d(1, 64, 4, 3).meets_alignment_rule());  // 3 % 4 != 0
  EXPECT_FALSE(make2d(1, 64, 3, 4).meets_alignment_rule());  // odd parvec
  EXPECT_TRUE(make3d(3, 64, 64, 2, 4).meets_alignment_rule());  // 12 % 4
  EXPECT_FALSE(make3d(5, 64, 64, 2, 2).meets_alignment_rule()); // 10 % 4
}

TEST(AccelConfig, ValidationRejectsBadShapes) {
  EXPECT_THROW(make2d(1, 63, 4, 1).validate(), ConfigError);  // not mult pv
  EXPECT_THROW(make2d(4, 16, 4, 2).validate(), ConfigError);  // halo eats it
  EXPECT_THROW(make3d(1, 32, 1, 4, 1).validate(), ConfigError);  // by == 1
  auto bad_dims = make2d(1, 64, 4, 1);
  bad_dims.dims = 4;
  EXPECT_THROW(bad_dims.validate(), ConfigError);
  auto y_in_2d = make2d(1, 64, 4, 1);
  y_in_2d.bsize_y = 2;
  EXPECT_THROW(y_in_2d.validate(), ConfigError);
  EXPECT_NO_THROW(make2d(4, 4096, 4, 22).validate());
  EXPECT_NO_THROW(make3d(4, 256, 128, 16, 3).validate());
}

TEST(AccelConfig, UpdatesPerCycle) {
  EXPECT_EQ(make2d(1, 4096, 8, 36).updates_per_cycle(), 288);
  EXPECT_EQ(make3d(1, 256, 256, 16, 12).updates_per_cycle(), 192);
}

TEST(AccelConfig, DescribeMentionsEverything) {
  const std::string d = make3d(2, 256, 128, 16, 6).describe();
  EXPECT_NE(d.find("3D"), std::string::npos);
  EXPECT_NE(d.find("rad=2"), std::string::npos);
  EXPECT_NE(d.find("256x128"), std::string::npos);
  EXPECT_NE(d.find("parvec=16"), std::string::npos);
  EXPECT_NE(d.find("partime=6"), std::string::npos);
}

TEST(AccelConfig, DescribeShowsNonDefaultStageLag) {
  // Auto (0) and the star default (lag == radius) stay implicit; a
  // resolved box-corner lag or an explicit override must be visible.
  AcceleratorConfig c = make2d(2, 256, 4, 2);
  EXPECT_EQ(c.describe().find("lag="), std::string::npos);
  c.stage_lag = c.radius;
  EXPECT_EQ(c.describe().find("lag="), std::string::npos);
  c.stage_lag = c.radius + 1;
  EXPECT_NE(c.describe().find("lag=3"), std::string::npos);
}

// --- blocking plan ---

TEST(BlockingPlan, ExactTiling2D) {
  // Paper setup: input a multiple of csize -> blocks tile exactly.
  const AcceleratorConfig c = make2d(1, 4096, 8, 36);  // csize 4024
  const BlockingPlan p = make_blocking_plan(c, 16096, 16096);
  EXPECT_EQ(p.blocks_x, 4);
  EXPECT_EQ(p.stream_extent, 16096 + 36);
  EXPECT_EQ(p.valid_cells, 16096 * 16096);
  EXPECT_EQ(p.cells_streamed, 4 * 4096 * (16096 + 36));
  EXPECT_EQ(p.vectors_streamed, p.cells_streamed / 8);
  EXPECT_GT(p.redundancy(), 1.0);
}

TEST(BlockingPlan, PartialLastBlock) {
  const AcceleratorConfig c = make2d(1, 64, 4, 2);  // csize 60
  const BlockingPlan p = make_blocking_plan(c, 100, 50);
  EXPECT_EQ(p.blocks_x, 2);  // 60 + 40
  EXPECT_EQ(p.valid_cells, 100 * 50);
  EXPECT_EQ(p.cells_streamed, 2 * 64 * (50 + 2));
}

TEST(BlockingPlan, ExactTiling3D) {
  const AcceleratorConfig c = make3d(2, 256, 128, 16, 6);  // cs 232 x 104
  const BlockingPlan p = make_blocking_plan(c, 696, 728, 696);
  EXPECT_EQ(p.blocks_x, 3);
  EXPECT_EQ(p.blocks_y, 7);
  EXPECT_EQ(p.stream_extent, 696 + 12);
  EXPECT_EQ(p.cells_streamed, 21 * 256 * 128 * (696 + 12));
  EXPECT_EQ(p.valid_cells, std::int64_t(696) * 728 * 696);
}

TEST(BlockingPlan, RedundancyGrowsWithPartime) {
  // The overlapped-blocking cost the paper trades against temporal reuse.
  double prev = 1.0;
  for (int pt : {1, 2, 4, 8}) {
    const AcceleratorConfig c = make2d(2, 256, 4, pt);
    const BlockingPlan p = make_blocking_plan(c, 2048, 2048);
    EXPECT_GT(p.redundancy(), prev);
    prev = p.redundancy();
  }
}

TEST(BlockingPlan, RedundancyShrinksWithBlockSize) {
  // Comparable last-block waste: both block sizes are small relative to
  // the grid, so the halo fraction dominates.
  const BlockingPlan small =
      make_blocking_plan(make2d(2, 64, 4, 4), 4096, 1024);
  const BlockingPlan large =
      make_blocking_plan(make2d(2, 256, 4, 4), 4096, 1024);
  EXPECT_GT(small.redundancy(), large.redundancy());
}

TEST(BlockingPlan, Rejects3DGridFor2DConfig) {
  EXPECT_THROW(make_blocking_plan(make2d(1, 64, 4, 1), 64, 64, 2),
               ConfigError);
  EXPECT_THROW(make_blocking_plan(make2d(1, 64, 4, 1), 0, 64), ConfigError);
}

class PlanAccounting
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PlanAccounting, StreamedEqualsBlocksTimesPassSize) {
  const auto [rad, parvec, partime] = GetParam();
  const AcceleratorConfig c = make3d(rad, 64, 32, parvec, partime);
  if (c.csize_x() <= 0 || c.csize_y() <= 0) GTEST_SKIP();
  const BlockingPlan p = make_blocking_plan(c, 150, 90, 40);
  EXPECT_EQ(p.cells_streamed,
            p.blocks_x * p.blocks_y * p.cells_streamed_per_pass);
  EXPECT_EQ(p.cells_streamed_per_pass, p.stream_extent * c.row_cells());
  EXPECT_GE(p.blocks_x * c.csize_x(), 150);
  EXPECT_GE(p.blocks_y * c.csize_y(), 90);
  EXPECT_LT((p.blocks_x - 1) * c.csize_x(), 150);
  EXPECT_LT((p.blocks_y - 1) * c.csize_y(), 90);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlanAccounting,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(2, 4, 8),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace fpga_stencil
