// Tests for the experiment harness: the regenerated comparison tables must
// reproduce the paper's qualitative findings (who wins where) and stay
// within tolerance of its quantitative rows.
#include <gtest/gtest.h>

#include <algorithm>

#include "harness/experiments.hpp"
#include "harness/paper_reference.hpp"

namespace fpga_stencil {
namespace {

const ComparisonRow& find_row(const std::vector<ComparisonRow>& rows,
                              const std::string& device, int rad) {
  for (const ComparisonRow& r : rows) {
    if (r.radius == rad && r.device.find(device) != std::string::npos) {
      return r;
    }
  }
  throw std::runtime_error("row not found: " + device);
}

TEST(PaperReference, TablesComplete) {
  EXPECT_EQ(paper::table3().size(), 8u);
  EXPECT_EQ(paper::table4().size(), 12u);
  EXPECT_EQ(paper::table5().size(), 24u);
  EXPECT_EQ(paper::related_fpga_work().size(), 2u);
  EXPECT_THROW(paper::table3_row(2, 5), ConfigError);
}

TEST(PaperReference, Deviation) {
  EXPECT_DOUBLE_EQ(paper::deviation(110.0, 100.0), 0.10);
  EXPECT_DOUBLE_EQ(paper::deviation(90.0, 100.0), 0.10);
  EXPECT_THROW(paper::deviation(1.0, 0.0), ConfigError);
}

TEST(Experiments, PaperConfigsValidate) {
  for (int dims : {2, 3}) {
    for (int rad = 1; rad <= 4; ++rad) {
      EXPECT_NO_THROW(paper_config(dims, rad).validate());
      std::int64_t nx, ny, nz;
      paper_input_size(dims, rad, nx, ny, nz);
      // Section IV.C: inputs are a multiple of the compute block size.
      const AcceleratorConfig cfg = paper_config(dims, rad);
      EXPECT_EQ(nx % cfg.csize_x(), 0) << dims << "D rad " << rad;
      if (dims == 3) {
        EXPECT_EQ(ny % cfg.csize_y(), 0);
      }
    }
  }
}

TEST(Experiments, Table4Structure) {
  const auto rows = comparison_table(2);
  EXPECT_EQ(rows.size(), 12u);  // 3 devices x 4 radii
  EXPECT_TRUE(std::none_of(rows.begin(), rows.end(),
                           [](const auto& r) { return r.extrapolated; }));
}

TEST(Experiments, Table5Structure) {
  const auto rows = comparison_table(3);
  EXPECT_EQ(rows.size(), 24u);  // 6 devices x 4 radii
  const auto extrapolated =
      std::count_if(rows.begin(), rows.end(),
                    [](const auto& r) { return r.extrapolated; });
  EXPECT_EQ(extrapolated, 8);  // GTX 980 Ti + Tesla P100
}

// ---- the paper's qualitative findings (Section VI.B) ----

TEST(Findings2D, FpgaWinsRadius1To3PhiWinsRadius4) {
  const auto rows = comparison_table(2);
  for (int rad = 1; rad <= 3; ++rad) {
    const double fpga = find_row(rows, "Arria", rad).gflops;
    EXPECT_GT(fpga, find_row(rows, "Xeon E5", rad).gflops) << rad;
    EXPECT_GT(fpga, find_row(rows, "Phi", rad).gflops) << rad;
  }
  EXPECT_GT(find_row(rows, "Phi", 4).gflops,
            find_row(rows, "Arria", 4).gflops);
}

TEST(Findings2D, FpgaBestPowerEfficiencyByClearMargin) {
  const auto rows = comparison_table(2);
  for (int rad = 1; rad <= 4; ++rad) {
    const double fpga = find_row(rows, "Arria", rad).power_efficiency;
    EXPECT_GT(fpga, 2.5 * find_row(rows, "Phi", rad).power_efficiency);
    EXPECT_GT(fpga, 2.5 * find_row(rows, "Xeon E5", rad).power_efficiency);
  }
}

TEST(Findings2D, OnlyFpgaBreaksRoofline) {
  const auto rows = comparison_table(2);
  for (const ComparisonRow& r : rows) {
    if (r.device.find("Arria") != std::string::npos) {
      EXPECT_GT(r.roofline_ratio, 1.0);
    } else {
      EXPECT_LT(r.roofline_ratio, 1.0);
    }
  }
}

TEST(Findings3D, FpgaWinsFirstOrderPhiWinsHigherExcludingExtrapolated) {
  const auto rows = comparison_table(3);
  const double fpga1 = find_row(rows, "Arria", 1).gflops;
  EXPECT_GT(fpga1, find_row(rows, "Xeon E5", 1).gflops);
  EXPECT_GT(fpga1, find_row(rows, "Phi", 1).gflops);
  EXPECT_GT(fpga1, find_row(rows, "GTX 580", 1).gflops);
  for (int rad = 2; rad <= 4; ++rad) {
    const double phi = find_row(rows, "Phi", rad).gflops;
    EXPECT_GT(phi, find_row(rows, "Arria", rad).gflops) << rad;
    EXPECT_GT(phi, find_row(rows, "GTX 580", rad).gflops) << rad;
    EXPECT_GT(phi, find_row(rows, "Xeon E5", rad).gflops) << rad;
  }
}

TEST(Findings3D, FpgaBestPowerEfficiencyExceptRadius4) {
  const auto rows = comparison_table(3);
  for (int rad = 1; rad <= 3; ++rad) {
    const double fpga = find_row(rows, "Arria", rad).power_efficiency;
    for (const char* dev : {"Xeon E5", "Phi", "GTX 580"}) {
      EXPECT_GT(fpga, find_row(rows, dev, rad).power_efficiency)
          << dev << " rad " << rad;
    }
  }
  // Radius 4: the Xeon Phi edges out the FPGA (4.714 vs 4.674).
  EXPECT_GT(find_row(rows, "Phi", 4).power_efficiency,
            find_row(rows, "Arria", 4).power_efficiency);
}

TEST(Findings3D, TeslaP100WinsIncludingExtrapolated) {
  const auto rows = comparison_table(3);
  for (int rad = 1; rad <= 4; ++rad) {
    const double p100 = find_row(rows, "P100", rad).gflops;
    for (const char* dev : {"Arria", "Xeon E5", "Phi", "GTX 580", "980"}) {
      EXPECT_GT(p100, find_row(rows, dev, rad).gflops) << dev << " " << rad;
    }
  }
}

TEST(Findings, CpuGcellsFlatFpgaGcellsFalling) {
  // Fig. 4's trend: FPGA GCell/s decreases ~proportional to the order;
  // Xeon/Phi stay flat; GPUs fall sub-linearly.
  const auto rows = comparison_table(3);
  const double fpga1 = find_row(rows, "Arria", 1).gcells;
  const double fpga4 = find_row(rows, "Arria", 4).gcells;
  EXPECT_GT(fpga1 / fpga4, 3.0);
  const double phi1 = find_row(rows, "Phi", 1).gcells;
  const double phi4 = find_row(rows, "Phi", 4).gcells;
  EXPECT_NEAR(phi1 / phi4, 1.0, 0.1);
  const double gpu1 = find_row(rows, "GTX 580", 1).gcells;
  const double gpu4 = find_row(rows, "GTX 580", 4).gcells;
  EXPECT_GT(gpu1 / gpu4, 1.0);
  EXPECT_LT(gpu1 / gpu4, 4.0);  // sub-linear in the radius
}

// ---- quantitative tolerance against Tables IV/V ----

class TableTolerance : public ::testing::TestWithParam<int> {};

TEST_P(TableTolerance, RowsWithinTolerance) {
  const int dims = GetParam();
  const auto ours = comparison_table(dims);
  const auto& ref = dims == 2 ? paper::table4() : paper::table5();
  for (const paper::ComparisonRefRow& p : ref) {
    const ComparisonRow& r = find_row(ours, p.device, p.radius);
    // GPU rows are exact arithmetic; CPU rows use a per-dims constant
    // sustained fraction (paper rows wiggle a few percent); FPGA rows come
    // through the fmax + efficiency models.
    EXPECT_NEAR(r.gflops / p.gflops, 1.0, 0.08)
        << p.device << " rad " << p.radius;
    EXPECT_NEAR(r.gcells / p.gcells, 1.0, 0.08)
        << p.device << " rad " << p.radius;
    EXPECT_NEAR(r.power_efficiency / p.power_efficiency, 1.0, 0.15)
        << p.device << " rad " << p.radius;
    EXPECT_NEAR(r.roofline_ratio - p.roofline_ratio, 0.0,
                0.05 + 0.05 * p.roofline_ratio)
        << p.device << " rad " << p.radius;
    EXPECT_EQ(r.extrapolated, p.extrapolated) << p.device;
  }
}

INSTANTIATE_TEST_SUITE_P(Tables4And5, TableTolerance, ::testing::Values(2, 3));

TEST(RelatedWork, SectionVICClaims) {
  // ~2x Shafiq et al. for 4th-order 3D; >5x Fu & Clapp for 3rd-order 3D.
  const DeviceSpec fpga = arria10_gx1150();
  const double ours_r4 = fpga_result_row(3, 4, fpga).perf.measured_gcells;
  const double ours_r3 = fpga_result_row(3, 3, fpga).perf.measured_gcells;
  EXPECT_GT(ours_r4, 1.8 * 2.783);
  EXPECT_GT(ours_r3, 5.0 * 1.540);
}

}  // namespace
}  // namespace fpga_stencil
