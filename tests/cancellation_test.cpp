// Cancellation-token semantics and direct backend cancellation: the
// token itself (latching, deadlines, error hierarchy), then each
// execution path observing a tripped token -- sync simulator,
// block-parallel pool, concurrent pipeline, resilient runner -- with the
// documented grid/scratch abort contract. Engine-level cancellation
// (handles, lifecycle, breaker) lives in engine_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/buffer_pool.hpp"
#include "common/cancellation.hpp"
#include "core/block_parallel_accelerator.hpp"
#include "core/concurrent_accelerator.hpp"
#include "core/stencil_accelerator.hpp"
#include "fault/resilient_runner.hpp"
#include "grid/grid_compare.hpp"
#include "stencil/reference.hpp"
#include "stencil/star_stencil.hpp"

namespace fpga_stencil {
namespace {

AcceleratorConfig small_cfg() {
  AcceleratorConfig c;
  c.dims = 2;
  c.radius = 1;
  c.bsize_x = 32;
  c.parvec = 4;
  c.partime = 2;
  return c;
}

Grid2D<float> small_grid(unsigned seed = 3) {
  Grid2D<float> g(48, 20);
  g.fill_random(seed);
  return g;
}

/// Enough streamed cells that a mid-run cancel lands mid-computation.
Grid2D<float> big_grid(unsigned seed = 9) {
  Grid2D<float> g(256, 192);
  g.fill_random(seed);
  return g;
}

TEST(CancellationToken, NullTokenNeverCancels) {
  CancellationToken t;
  EXPECT_FALSE(t.valid());
  EXPECT_FALSE(t.cancel_requested());
  EXPECT_EQ(t.cause(), CancelCause::none);
  EXPECT_NO_THROW(t.throw_if_cancelled());
  // Requesting cancel on a null token is a harmless no-op.
  t.request_cancel();
  EXPECT_FALSE(t.cancel_requested());
}

TEST(CancellationToken, RequestCancelLatches) {
  CancellationToken t = CancellationToken::make();
  EXPECT_TRUE(t.valid());
  EXPECT_FALSE(t.cancel_requested());
  const auto before = std::chrono::steady_clock::now();
  t.request_cancel();
  EXPECT_TRUE(t.cancel_requested());
  EXPECT_EQ(t.cause(), CancelCause::cancelled);
  EXPECT_GE(t.cancelled_at(), before);
  EXPECT_LE(t.cancelled_at(), std::chrono::steady_clock::now());
  EXPECT_THROW(t.throw_if_cancelled(), CancelledError);
  // Latched: a second request does not move the timestamp or the cause.
  const auto first = t.cancelled_at();
  t.request_cancel();
  EXPECT_EQ(t.cancelled_at(), first);
  EXPECT_EQ(t.cause(), CancelCause::cancelled);
}

TEST(CancellationToken, DeadlineTripsLazily) {
  CancellationToken t =
      CancellationToken::with_timeout(std::chrono::milliseconds(5));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // No thread ticks the deadline; the observer's poll latches it.
  EXPECT_TRUE(t.cancel_requested());
  EXPECT_EQ(t.cause(), CancelCause::deadline);
  EXPECT_THROW(t.throw_if_cancelled(), DeadlineExceededError);
}

TEST(CancellationToken, UnexpiredDeadlineDoesNotTrip) {
  CancellationToken t =
      CancellationToken::with_timeout(std::chrono::minutes(10));
  EXPECT_FALSE(t.cancel_requested());
  // An explicit cancel beats a pending deadline.
  t.request_cancel();
  EXPECT_EQ(t.cause(), CancelCause::cancelled);
  EXPECT_THROW(t.throw_if_cancelled(), CancelledError);
}

TEST(CancellationToken, DeadlineErrorIsACancelledError) {
  // Callers may catch the whole family with one handler.
  CancellationToken t =
      CancellationToken::with_deadline(std::chrono::steady_clock::now());
  EXPECT_THROW(t.throw_if_cancelled(), CancelledError);
}

TEST(CancellationToken, CopiesShareOneState) {
  CancellationToken a = CancellationToken::make();
  CancellationToken b = a;
  b.request_cancel();
  EXPECT_TRUE(a.cancel_requested());
  EXPECT_EQ(a.cancelled_at(), b.cancelled_at());
}

TEST(CancelBackends, SyncSimPreTrippedTokenLeavesGridUntouched) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  Grid2D<float> g = small_grid();
  const Grid2D<float> initial = g;
  CancellationToken t = CancellationToken::make();
  t.request_cancel();
  StencilAccelerator accel(taps, small_cfg());
  EXPECT_THROW((void)accel.run(g, 6, nullptr, &t), CancelledError);
  EXPECT_TRUE(compare_exact(g, initial).identical());
}

TEST(CancelBackends, SyncSimMidRunCancelStopsPromptlyKeepsCompletedPass) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  Grid2D<float> g = big_grid();
  CancellationToken t = CancellationToken::make();
  StencilAccelerator accel(taps, small_cfg());
  std::thread canceller([&t] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    t.request_cancel();
  });
  // Enough iterations to outlast the canceller by a wide margin.
  EXPECT_THROW((void)accel.run(g, 5000, nullptr, &t), CancelledError);
  canceller.join();
  // The abort contract: the grid holds some *completed* pass -- i.e. the
  // state reachable by a whole number of passes from the start.
  Grid2D<float> walk = big_grid();
  bool matched = compare_exact(g, walk).identical();  // pass 0
  for (int pass = 0; pass < 5000 / 2 && !matched; ++pass) {
    reference_run(taps, walk, 2);  // one partime=2 pass
    matched = compare_exact(g, walk).identical();
  }
  EXPECT_TRUE(matched) << "grid is not at a pass boundary";
}

TEST(CancelBackends, BlockParallelMidRunCancelUnwindsAllWorkers) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  Grid2D<float> g = big_grid();
  RunOptions opts;
  opts.workers = 4;
  opts.cancel = CancellationToken::make();
  std::thread canceller([&opts] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    opts.cancel.request_cancel();
  });
  EXPECT_THROW((void)run_block_parallel(taps, small_cfg(), g, 5000, opts),
               CancelledError);
  canceller.join();  // joining proves the pool unwound; no hang
}

TEST(CancelBackends, BlockParallelReturnsPoolLeasesOnCancel) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  Grid2D<float> g = big_grid();
  BufferPool pool(16);
  std::vector<float> scratch;
  RunOptions opts;
  opts.workers = 4;
  opts.pool = &pool;
  opts.scratch = &scratch;
  opts.cancel = CancellationToken::make();
  opts.cancel.request_cancel();  // trip before the first block
  const Grid2D<float> initial = g;
  EXPECT_THROW((void)run_block_parallel(taps, small_cfg(), g, 6, opts),
               CancelledError);
  EXPECT_TRUE(compare_exact(g, initial).identical());
  // Every worker-lane lease flowed back; nothing leaked on the unwind.
  EXPECT_EQ(pool.outstanding(), 0);
}

TEST(CancelBackends, ConcurrentPipelineCancelUnblocksDataflow) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  Grid2D<float> g = big_grid();
  RunOptions opts;
  opts.cancel = CancellationToken::make();
  std::thread canceller([&opts] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    opts.cancel.request_cancel();
  });
  EXPECT_THROW((void)run_concurrent(taps, small_cfg(), g, 5000, opts),
               CancelledError);
  canceller.join();
}

TEST(CancelBackends, ResilientRunnerNeverAbsorbsCancellation) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  Grid2D<float> g = small_grid();
  ResilienceOptions opts;  // retries PassAbortedError, not CancelledError
  opts.base.cancel = CancellationToken::make();
  opts.base.cancel.request_cancel();
  EXPECT_THROW((void)run_resilient(taps, small_cfg(), g, 6, opts),
               CancelledError);
}

TEST(CancelBackends, NonCancelledRunStaysBitExact) {
  // A valid-but-never-tripped token must not perturb the computation.
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  Grid2D<float> want = small_grid();
  reference_run(taps, want, 6);
  Grid2D<float> g = small_grid();
  CancellationToken t = CancellationToken::make();
  StencilAccelerator accel(taps, small_cfg());
  (void)accel.run(g, 6, nullptr, &t);
  EXPECT_TRUE(compare_exact(g, want).identical());
}

}  // namespace
}  // namespace fpga_stencil
