// Tests for the FPGA device catalog, resource model, fmax model, and power
// model against the paper's Tables II and III.
#include <gtest/gtest.h>

#include "fpga/device_spec.hpp"
#include "fpga/fmax_model.hpp"
#include "fpga/power_model.hpp"
#include "fpga/resource_model.hpp"
#include "harness/experiments.hpp"
#include "harness/paper_reference.hpp"

namespace fpga_stencil {
namespace {

TEST(DeviceSpec, Table2Characteristics) {
  // FLOP/Byte column of the paper's Table II.
  EXPECT_NEAR(arria10_gx1150().flop_per_byte(), 42.522, 0.01);
  EXPECT_NEAR(xeon_e5_2650v4().flop_per_byte(), 9.115, 0.01);
  EXPECT_NEAR(xeon_phi_7210f().flop_per_byte(), 13.313, 0.01);
  EXPECT_NEAR(gtx_580().flop_per_byte(), 8.212, 0.01);
  EXPECT_NEAR(gtx_980ti().flop_per_byte(), 20.499, 0.01);
  EXPECT_NEAR(tesla_p100().flop_per_byte(), 12.901, 0.01);
}

TEST(DeviceSpec, Arria10Resources) {
  const DeviceSpec d = arria10_gx1150();
  EXPECT_EQ(d.dsps, 1518);
  EXPECT_EQ(d.m20k_blocks, 2713);
  EXPECT_EQ(d.m20k_bits_total(), std::int64_t(2713) * 20480);
  EXPECT_TRUE(d.is_fpga());
  EXPECT_FALSE(xeon_e5_2650v4().is_fpga());
}

TEST(DeviceSpec, ConclusionStratix10Claim) {
  // Conclusion: "the FLOP to byte ratio goes beyond 100" for Stratix 10 GX
  // 2800 with 4 banks of DDR4-2400, while the MX (HBM) does not suffer.
  EXPECT_GT(stratix10_gx2800().flop_per_byte(), 100.0);
  EXPECT_LT(stratix10_mx2100().flop_per_byte(), 20.0);
}

TEST(ResourceModel, DspPerCellUpdateFormulas) {
  for (int rad = 1; rad <= 8; ++rad) {
    EXPECT_EQ(dsps_per_cell_update(2, rad), 4 * rad + 1);
    EXPECT_EQ(dsps_per_cell_update(3, rad), 6 * rad + 1);
    // Shared coefficients reduce the multiply count but not the adds:
    // exactly one DSP saved (Section V.A).
    EXPECT_EQ(dsps_per_cell_update(2, rad, true), 4 * rad);
    EXPECT_EQ(dsps_per_cell_update(3, rad, true), 6 * rad);
  }
}

TEST(ResourceModel, MaxTotalParallelismEq4) {
  const DeviceSpec d = arria10_gx1150();
  EXPECT_EQ(max_total_parallelism(d, 2, 1), 1518 / 5);
  EXPECT_EQ(max_total_parallelism(d, 2, 4), 1518 / 17);
  EXPECT_EQ(max_total_parallelism(d, 3, 1), 1518 / 7);   // 216
  EXPECT_EQ(max_total_parallelism(d, 3, 4), 1518 / 25);  // 60
}

/// The paper's exact DSP counts: 3D radius 1 uses 1344 of 1518 DSPs
/// (Section VI.B's occupancy discussion).
TEST(ResourceModel, PaperDspCounts) {
  const DeviceSpec d = arria10_gx1150();
  EXPECT_EQ(dsp_usage(paper_config(3, 1)), 1344);
  EXPECT_EQ(dsp_usage(paper_config(2, 1)), 1440);
  EXPECT_EQ(dsp_usage(paper_config(2, 2)), 1512);
  for (int dims : {2, 3}) {
    for (int rad = 1; rad <= 4; ++rad) {
      const ResourceUsage u = estimate_resources(paper_config(dims, rad), d);
      const double paper_dsp = paper::table3_row(dims, rad).dsp_fraction;
      EXPECT_NEAR(u.dsp_fraction, paper_dsp, 0.015)
          << dims << "D rad " << rad;
    }
  }
}

class Table3Resources
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(Table3Resources, BramWithinCalibrationTolerance) {
  const auto [dims, rad] = GetParam();
  const DeviceSpec d = arria10_gx1150();
  const ResourceUsage u = estimate_resources(paper_config(dims, rad), d);
  const paper::Table3Row& p = paper::table3_row(dims, rad);
  EXPECT_TRUE(u.fits());
  EXPECT_NEAR(u.bram_bits_fraction, p.mem_bits_fraction, 0.03);
  EXPECT_NEAR(u.bram_block_fraction, p.mem_blocks_fraction, 0.06);
  EXPECT_NEAR(u.logic_fraction, p.logic_fraction, 0.10);
}

INSTANTIATE_TEST_SUITE_P(PaperRows, Table3Resources,
                         ::testing::Values(std::pair{2, 1}, std::pair{2, 2},
                                           std::pair{2, 3}, std::pair{2, 4},
                                           std::pair{3, 1}, std::pair{3, 2},
                                           std::pair{3, 3}, std::pair{3, 4}));

TEST(ResourceModel, OversubscribedDspThrows) {
  AcceleratorConfig cfg = paper_config(2, 1);
  cfg.partime = 64;  // 5 * 8 * 64 = 2560 DSPs > 1518
  cfg.bsize_x = 4096;
  EXPECT_THROW(check_fit(cfg, arria10_gx1150()), ResourceError);
}

TEST(ResourceModel, OversubscribedBramThrows) {
  AcceleratorConfig cfg;
  cfg.dims = 3;
  cfg.radius = 4;
  cfg.bsize_x = 512;
  cfg.bsize_y = 256;
  cfg.parvec = 2;
  cfg.partime = 8;  // huge shift registers
  EXPECT_THROW(check_fit(cfg, arria10_gx1150()), ResourceError);
}

TEST(ResourceModel, ErrorMessageNamesTheResource) {
  AcceleratorConfig cfg = paper_config(2, 1);
  cfg.partime = 64;
  try {
    check_fit(cfg, arria10_gx1150());
    FAIL() << "should not fit";
  } catch (const ResourceError& e) {
    EXPECT_NE(std::string(e.what()).find("DSP"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("Arria 10"), std::string::npos);
  }
}

TEST(ResourceModel, NonFpgaRejected) {
  EXPECT_THROW(estimate_resources(paper_config(2, 1), xeon_e5_2650v4()),
               ConfigError);
  EXPECT_THROW(max_total_parallelism(xeon_e5_2650v4(), 2, 1), ConfigError);
}

/// Section VI.A projection: on the Arria 10, 5th/6th-order 3D stencils are
/// limited to two parallel temporal blocks by Block RAM.
TEST(ResourceModel, HighOrder3DLimitedToPartime2) {
  const DeviceSpec d = arria10_gx1150();
  for (int rad : {5, 6}) {
    AcceleratorConfig cfg;
    cfg.dims = 3;
    cfg.radius = rad;
    cfg.bsize_x = rad == 5 ? 256 : 128;
    cfg.bsize_y = 128;
    cfg.parvec = 16;
    cfg.partime = 2;
    EXPECT_TRUE(estimate_resources(cfg, d).fits()) << "rad=" << rad;
    cfg.partime = 3;
    EXPECT_FALSE(estimate_resources(cfg, d).fits()) << "rad=" << rad;
  }
}

// ---- fmax model ----

TEST(FmaxModel, Table3Tolerances) {
  const DeviceSpec d = arria10_gx1150();
  for (int dims : {2, 3}) {
    for (int rad = 1; rad <= 4; ++rad) {
      const double f = estimate_fmax_mhz(paper_config(dims, rad), d);
      const double paper_f = paper::table3_row(dims, rad).fmax_mhz;
      EXPECT_NEAR(f / paper_f, 1.0, 0.045) << dims << "D rad " << rad;
    }
  }
}

TEST(FmaxModel, DecreasesWithRadiusWhenPressured) {
  const DeviceSpec d = arria10_gx1150();
  double prev = 1e9;
  for (int rad = 1; rad <= 4; ++rad) {
    const double f = estimate_fmax_mhz(paper_config(3, rad), d);
    EXPECT_LE(f, prev);
    prev = f;
  }
}

TEST(FmaxModel, HighOrder3DBelowMemoryControllerClock) {
  // Section VI.A: for 2nd-4th order 3D stencils fmax falls below 266 MHz.
  const DeviceSpec d = arria10_gx1150();
  EXPECT_GT(estimate_fmax_mhz(paper_config(3, 1), d), d.mem_controller_mhz);
  for (int rad : {3, 4}) {
    EXPECT_LT(estimate_fmax_mhz(paper_config(3, rad), d),
              d.mem_controller_mhz);
  }
}

TEST(FmaxModel, StratixVSmallParamsRadiusIndependent) {
  // Section VI.A: with small parameters on a Stratix V, the exact same
  // fmax is achieved regardless of the stencil radius.
  const DeviceSpec sv = stratix_v_gxa7();
  AcceleratorConfig cfg;
  cfg.dims = 2;
  cfg.bsize_x = 1024;
  cfg.parvec = 2;
  cfg.partime = 2;
  double first = 0.0;
  for (int rad = 1; rad <= 4; ++rad) {
    cfg.radius = rad;
    const double f = estimate_fmax_mhz(cfg, sv);
    if (rad == 1) {
      first = f;
    } else {
      EXPECT_DOUBLE_EQ(f, first) << "rad=" << rad;
    }
  }
}

// ---- power model ----

TEST(PowerModel, Table3Tolerances) {
  const DeviceSpec d = arria10_gx1150();
  for (int dims : {2, 3}) {
    for (int rad = 1; rad <= 4; ++rad) {
      const paper::Table3Row& p = paper::table3_row(dims, rad);
      const double watts =
          estimate_power_watts(paper_config(dims, rad), d, p.fmax_mhz);
      EXPECT_NEAR(watts / p.power_watts, 1.0, 0.10) << dims << "D r" << rad;
    }
  }
}

TEST(PowerModel, FmaxDominates) {
  // Section VI.A: the main factor is fmax.
  const DeviceSpec d = arria10_gx1150();
  const AcceleratorConfig cfg = paper_config(2, 2);
  EXPECT_GT(estimate_power_watts(cfg, d, 340.0),
            estimate_power_watts(cfg, d, 260.0));
}

TEST(PowerModel, BramRaisesPowerAtEqualFmax) {
  // Section VI.A: the 3rd-order 3D stencil draws more than the 2nd-order
  // one despite a lower fmax, due to higher Block RAM usage.
  const DeviceSpec d = arria10_gx1150();
  const double p2 = estimate_power_watts(paper_config(3, 2), d, 260.0);
  const double p3 = estimate_power_watts(paper_config(3, 3), d, 260.0);
  EXPECT_GT(p3, p2);
}

TEST(PowerModel, ClampedToSaneRange) {
  const DeviceSpec d = arria10_gx1150();
  AcceleratorConfig tiny;
  tiny.dims = 2;
  tiny.radius = 1;
  tiny.bsize_x = 64;
  tiny.parvec = 2;
  tiny.partime = 1;
  EXPECT_GE(estimate_power_watts(tiny, d, 100.0), 25.0);
  EXPECT_LE(estimate_power_watts(paper_config(3, 1), d, 400.0),
            d.tdp_watts * 1.2);
}

}  // namespace
}  // namespace fpga_stencil
