// Tests for the extension models: double precision, the Quartus-v17
// regression, and the Stratix 10 projection claims.
#include <gtest/gtest.h>

#include "fpga/fmax_model.hpp"
#include "fpga/toolchain.hpp"
#include "harness/experiments.hpp"
#include "model/performance_model.hpp"
#include "tune/tuner.hpp"

namespace fpga_stencil {
namespace {

const DeviceSpec kArria = arria10_gx1150();

// ---- precision ----

TEST(Precision, BytesAndFmaCosts) {
  EXPECT_EQ(bytes_per_value(ValuePrecision::kFloat32), 4);
  EXPECT_EQ(bytes_per_value(ValuePrecision::kFloat64), 8);
  EXPECT_EQ(dsps_per_fma(ValuePrecision::kFloat32), 1);
  EXPECT_EQ(dsps_per_fma(ValuePrecision::kFloat64), 4);
}

TEST(Precision, CharacteristicsScale) {
  const StencilCharacteristics f32 =
      stencil_characteristics(3, 2, ValuePrecision::kFloat32);
  const StencilCharacteristics f64 =
      stencil_characteristics(3, 2, ValuePrecision::kFloat64);
  EXPECT_EQ(f64.flop_per_cell, f32.flop_per_cell);  // FLOPs are FLOPs
  EXPECT_EQ(f64.bytes_per_cell, 2 * f32.bytes_per_cell);
  EXPECT_EQ(f64.dsp_per_cell, 4 * f32.dsp_per_cell);
  EXPECT_DOUBLE_EQ(f64.flop_per_byte, f32.flop_per_byte / 2.0);
}

TEST(Precision, DemandDoubles) {
  const AcceleratorConfig cfg = paper_config(3, 2);
  const double d32 =
      memory_demand_gbps(cfg, 260.0, ValuePrecision::kFloat32);
  const double d64 =
      memory_demand_gbps(cfg, 260.0, ValuePrecision::kFloat64);
  EXPECT_DOUBLE_EQ(d64, 2.0 * d32);
}

TEST(Precision, Fp64EfficiencyNoBetter) {
  // Wider accesses + doubled demand: efficiency can only drop.
  for (int rad = 1; rad <= 4; ++rad) {
    const AcceleratorConfig cfg = paper_config(3, rad);
    const double e32 =
        pipeline_efficiency(cfg, kArria, 260.0, ValuePrecision::kFloat32);
    const double e64 =
        pipeline_efficiency(cfg, kArria, 260.0, ValuePrecision::kFloat64);
    EXPECT_LE(e64, e32 + 1e-12) << "rad " << rad;
  }
}

TEST(Precision, EstimateUsesPrecisionBytes) {
  const AcceleratorConfig cfg = paper_config(2, 1);
  const PerformanceEstimate e32 = estimate_performance(
      cfg, kArria, 343.8, 16096, 16096, 1, ValuePrecision::kFloat32);
  const PerformanceEstimate e64 = estimate_performance(
      cfg, kArria, 343.8, 16096, 16096, 1, ValuePrecision::kFloat64);
  EXPECT_DOUBLE_EQ(e64.estimated_gbps, 2.0 * e32.estimated_gbps);
  EXPECT_DOUBLE_EQ(e64.estimated_gcells, e32.estimated_gcells);
  EXPECT_DOUBLE_EQ(e64.estimated_gflops, e32.estimated_gflops);
}

// ---- toolchain regression ----

TEST(Toolchain, BaselineIsIdentity) {
  const AcceleratorConfig cfg = paper_config(2, 2);
  const ResourceUsage base = estimate_resources(cfg, kArria);
  const ResourceUsage v16 = estimate_resources_with_toolchain(
      cfg, kArria, ToolchainVersion::kQuartus16_1);
  EXPECT_EQ(base.bram_blocks, v16.bram_blocks);
  EXPECT_DOUBLE_EQ(
      estimate_fmax_with_toolchain(cfg, kArria,
                                   ToolchainVersion::kQuartus16_1),
      estimate_fmax_mhz(cfg, kArria));
}

TEST(Toolchain, V17RegressionInPaperRanges) {
  const ToolchainRegression r =
      toolchain_regression(ToolchainVersion::kQuartus17);
  // "20-30% lower performance", "5-10% more Block RAMs".
  EXPECT_GE(1.0 - r.fmax_scale, 0.20);
  EXPECT_LE(1.0 - r.fmax_scale, 0.30);
  EXPECT_GE(r.bram_scale - 1.0, 0.05);
  EXPECT_LE(r.bram_scale - 1.0, 0.10);
}

TEST(Toolchain, MaxedOutConfigsStopFitting) {
  // The paper's 2D radius-2..4 configs sit at ~100% Block RAM blocks under
  // v16.1; +7.5% breaks them.
  for (int rad : {2, 3, 4}) {
    const AcceleratorConfig cfg = paper_config(2, rad);
    EXPECT_TRUE(estimate_resources_with_toolchain(
                    cfg, kArria, ToolchainVersion::kQuartus16_1)
                    .fits())
        << rad;
    EXPECT_FALSE(estimate_resources_with_toolchain(
                     cfg, kArria, ToolchainVersion::kQuartus17)
                     .fits())
        << rad;
  }
}

// ---- Stratix 10 projection (conclusion claims) ----

TunedConfig tune_3d(const DeviceSpec& dev, int rad) {
  TunerOptions o;
  o.dims = 3;
  o.radius = rad;
  o.nx = 696;
  o.ny = 728;
  o.nz = 696;
  o.max_parvec = 64;
  return best_config(dev, o);
}

TEST(Stratix10, GxGainsTrailDspGains) {
  // GX 2800 has 3.79x the Arria 10's DSPs but only 2.25x its bandwidth;
  // high-order 3D GFLOP/s gains must land well below the DSP ratio.
  const double dsp_ratio =
      double(stratix10_gx2800().dsps) / double(arria10_gx1150().dsps);
  for (int rad : {2, 3, 4}) {
    const double arria =
        fpga_result_row(3, rad, arria10_gx1150()).perf.measured_gflops;
    const double gx = tune_3d(stratix10_gx2800(), rad).perf.measured_gflops;
    EXPECT_GT(gx, arria) << rad;                    // it does improve...
    EXPECT_LT(gx / arria, dsp_ratio * 0.95) << rad; // ...but sub-DSP-ratio
  }
}

TEST(Stratix10, MxBeatsGxAtHighOrder) {
  // HBM removes the memory wall (the conclusion's "will likely not suffer").
  for (int rad : {2, 3, 4}) {
    const TunedConfig gx = tune_3d(stratix10_gx2800(), rad);
    const TunedConfig mx = tune_3d(stratix10_mx2100(), rad);
    EXPECT_GT(mx.perf.measured_gflops, gx.perf.measured_gflops) << rad;
    EXPECT_GE(mx.perf.pipeline_efficiency, gx.perf.pipeline_efficiency)
        << rad;
  }
}

TEST(Stratix10, MxNeedsLessTemporalBlocking) {
  // With 512 GB/s the MX's tuned configs lean on bandwidth, not temporal
  // reuse: its best roofline ratio at radius 4 is below 1 while the
  // bandwidth-starved GX still must exceed 1.
  EXPECT_LT(tune_3d(stratix10_mx2100(), 4).perf.roofline_ratio, 1.0);
  EXPECT_GT(tune_3d(stratix10_gx2800(), 4).perf.roofline_ratio, 1.0);
}

}  // namespace
}  // namespace fpga_stencil
