// Tests for the multi-FPGA cluster extension: bit-exactness of the
// partitioned computation and sanity of the scaling model.
#include <gtest/gtest.h>

#include "cluster/multi_fpga.hpp"
#include "harness/experiments.hpp"
#include "core/stencil_accelerator.hpp"
#include "grid/grid_compare.hpp"
#include "stencil/box_stencil.hpp"
#include "stencil/reference.hpp"

namespace fpga_stencil {
namespace {

const DeviceSpec kArria = arria10_gx1150();
const LinkSpec kPcie{8.0, 5.0};

AcceleratorConfig cfg2d(int rad, std::int64_t bx, int pv, int pt) {
  AcceleratorConfig c;
  c.dims = 2;
  c.radius = rad;
  c.bsize_x = bx;
  c.parvec = pv;
  c.partime = pt;
  return c;
}

TEST(MultiFpga, ConstructionValidation) {
  const TapSet taps = StarStencil::make_benchmark(2, 1).to_taps();
  const AcceleratorConfig cfg = cfg2d(1, 32, 4, 2);
  EXPECT_THROW(MultiFpgaCluster(0, taps, cfg, kArria, kPcie), ConfigError);
  EXPECT_THROW(MultiFpgaCluster(2, taps, cfg, kArria, LinkSpec{0.0, 1.0}),
               ConfigError);
  EXPECT_NO_THROW(MultiFpgaCluster(2, taps, cfg, kArria, kPcie));
}

class MultiFpgaExactness2D : public ::testing::TestWithParam<int> {};

TEST_P(MultiFpgaExactness2D, BitExactVsReference) {
  const int boards = GetParam();
  for (int rad : {1, 2, 3}) {
    const StarStencil s = StarStencil::make_benchmark(2, rad, 31);
    const AcceleratorConfig cfg = cfg2d(rad, 48, 4, 3);
    MultiFpgaCluster cluster(boards, s.to_taps(), cfg, kArria, kPcie);
    Grid2D<float> g(90, 57);
    g.fill_random(7);
    Grid2D<float> want = g;
    const ClusterStats stats = cluster.run(g, 7);  // partial tail pass too
    reference_run(s, want, 7);
    const CompareResult cmp = compare_exact(g, want);
    EXPECT_TRUE(cmp.identical())
        << "boards=" << boards << " rad=" << rad << ": " << cmp.summary();
    EXPECT_EQ(stats.passes, 3);
    EXPECT_GT(stats.total_seconds, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Boards, MultiFpgaExactness2D,
                         ::testing::Values(1, 2, 3, 4, 7));

TEST(MultiFpga, BitExact3DAndBox) {
  AcceleratorConfig cfg;
  cfg.dims = 3;
  cfg.radius = 2;
  cfg.bsize_x = 24;
  cfg.bsize_y = 20;
  cfg.parvec = 4;
  cfg.partime = 2;
  // Star.
  {
    const StarStencil s = StarStencil::make_benchmark(3, 2, 9);
    MultiFpgaCluster cluster(3, s.to_taps(), cfg, kArria, kPcie);
    Grid3D<float> g(30, 24, 17);
    g.fill_random(5);
    Grid3D<float> want = g;
    cluster.run(g, 5);
    reference_run(s, want, 5);
    EXPECT_TRUE(compare_exact(g, want).identical());
  }
  // Box (extra stream lag through the generalized engine).
  {
    cfg.radius = 1;
    const TapSet box = make_box_stencil(3, 1, 3);
    MultiFpgaCluster cluster(4, box, cfg, kArria, kPcie);
    Grid3D<float> g(30, 24, 17);
    g.fill_random(8);
    Grid3D<float> want = g;
    cluster.run(g, 3);
    reference_run(box, want, 3);
    EXPECT_TRUE(compare_exact(g, want).identical());
  }
}

TEST(MultiFpga, MatchesSingleDeviceAccelerator) {
  const StarStencil s = StarStencil::make_benchmark(2, 2, 17);
  const AcceleratorConfig cfg = cfg2d(2, 64, 4, 2);
  Grid2D<float> a(120, 60), b(120, 60);
  a.fill_random(4);
  b = a;
  StencilAccelerator single(s, cfg);
  single.run(a, 6);
  MultiFpgaCluster cluster(4, s.to_taps(), cfg, kArria, kPcie);
  cluster.run(b, 6);
  EXPECT_TRUE(compare_exact(a, b).identical());
}

TEST(MultiFpga, SingleBoardHasNoExchange) {
  const StarStencil s = StarStencil::make_benchmark(2, 1);
  MultiFpgaCluster cluster(1, s.to_taps(), cfg2d(1, 32, 4, 2), kArria,
                           kPcie);
  Grid2D<float> g(64, 40);
  g.fill_random(1);
  const ClusterStats stats = cluster.run(g, 4);
  EXPECT_EQ(stats.halo_bytes_exchanged, 0);
  EXPECT_DOUBLE_EQ(stats.exchange_seconds, 0.0);
}

TEST(MultiFpga, ComputeTimeShrinksWithBoards) {
  // Strong scaling on the modeled compute side: more boards, smaller slabs.
  const StarStencil s = StarStencil::make_benchmark(2, 2);
  const AcceleratorConfig cfg = cfg2d(2, 64, 4, 2);
  double prev = 1e30;
  for (int boards : {1, 2, 4}) {
    MultiFpgaCluster cluster(boards, s.to_taps(), cfg, kArria, kPcie);
    Grid2D<float> g(128, 256);
    g.fill_random(1);
    const ClusterStats stats = cluster.run(g, 2);
    EXPECT_LT(stats.compute_seconds, prev) << boards;
    prev = stats.compute_seconds;
  }
}

TEST(MultiFpga, SlowLinkRaisesExchangeFraction) {
  const StarStencil s = StarStencil::make_benchmark(2, 2);
  const AcceleratorConfig cfg = cfg2d(2, 64, 4, 2);
  Grid2D<float> g1(128, 256), g2(128, 256);
  g1.fill_random(1);
  g2.fill_random(1);
  MultiFpgaCluster fast(4, s.to_taps(), cfg, kArria, LinkSpec{100.0, 1.0});
  MultiFpgaCluster slow(4, s.to_taps(), cfg, kArria, LinkSpec{1.0, 50.0});
  const ClusterStats f = fast.run(g1, 4);
  const ClusterStats sl = slow.run(g2, 4);
  EXPECT_GT(sl.exchange_fraction(), f.exchange_fraction());
  // Identical computation regardless of the link model.
  EXPECT_TRUE(compare_exact(g1, g2).identical());
}

TEST(MultiFpga, PureModelMatchesExecutedTiming) {
  // model_cluster_run must agree exactly with the timing the executing
  // cluster reports (same formulas, no computation).
  const StarStencil s = StarStencil::make_benchmark(2, 2);
  const AcceleratorConfig cfg = cfg2d(2, 64, 4, 2);
  MultiFpgaCluster cluster(3, s.to_taps(), cfg, kArria, kPcie);
  Grid2D<float> g(128, 96);
  g.fill_random(1);
  const ClusterStats executed = cluster.run(g, 5);
  const ClusterStats modeled =
      model_cluster_run(3, cfg, kArria, kPcie, 128, 96, 1, 5);
  EXPECT_DOUBLE_EQ(executed.compute_seconds, modeled.compute_seconds);
  EXPECT_DOUBLE_EQ(executed.exchange_seconds, modeled.exchange_seconds);
  EXPECT_EQ(executed.halo_bytes_exchanged, modeled.halo_bytes_exchanged);
  EXPECT_EQ(executed.passes, modeled.passes);
}

TEST(MultiFpga, ModelStrongScalingSublinear) {
  // Halo recompute grows with board count: speedup stays below linear.
  const AcceleratorConfig cfg = paper_config(3, 2);
  const ClusterStats one =
      model_cluster_run(1, cfg, kArria, kPcie, 696, 728, 696, 100);
  const ClusterStats eight =
      model_cluster_run(8, cfg, kArria, kPcie, 696, 728, 696, 100);
  const double speedup = one.total_seconds / eight.total_seconds;
  EXPECT_GT(speedup, 3.0);
  EXPECT_LT(speedup, 8.0);
}

TEST(MultiFpga, MoreBoardsThanRowsRejected) {
  const StarStencil s = StarStencil::make_benchmark(2, 1);
  MultiFpgaCluster cluster(64, s.to_taps(), cfg2d(1, 32, 4, 1), kArria,
                           kPcie);
  Grid2D<float> g(32, 16);
  EXPECT_THROW(cluster.run(g, 1), ConfigError);
}

// ---- temporal chaining (the [19] two-board arrangement) ----

TEST(TemporalChain, BitExactVsReference) {
  const StarStencil s = StarStencil::make_benchmark(2, 2, 23);
  const AcceleratorConfig cfg = cfg2d(2, 48, 4, 2);
  Grid2D<float> g(70, 40);
  g.fill_random(3);
  Grid2D<float> want = g;
  const ClusterStats stats =
      run_temporal_chain(3, s.to_taps(), cfg, kArria, kPcie, g, 11);
  reference_run(s, want, 11);
  EXPECT_TRUE(compare_exact(g, want).identical());
  // 11 steps, 3 boards x partime 2 = 6 per super-pass -> 2 super-passes.
  EXPECT_EQ(stats.passes, 2);
  EXPECT_GT(stats.total_seconds, 0.0);
}

TEST(TemporalChain, SteadyStateScalesWithBoards) {
  // Many super-passes amortize the fill: wall time per time step drops
  // roughly 1/boards when the link keeps up.
  const AcceleratorConfig cfg = paper_config(3, 2);
  const LinkSpec fat{100.0, 1.0};
  Grid3D<float> dummy(8, 8, 8);  // timing only depends on the model call
  (void)dummy;
  const int iters = 960;  // many super-passes
  const StarStencil s = StarStencil::make_benchmark(3, 2);
  AcceleratorConfig small = cfg;
  small.bsize_x = 32;
  small.bsize_y = 16;
  small.parvec = 4;
  small.partime = 2;
  Grid3D<float> g1(24, 20, 10), g4(24, 20, 10);
  g1.fill_random(1);
  g4.fill_random(1);
  const ClusterStats one =
      run_temporal_chain(1, s.to_taps(), small, kArria, fat, g1, iters);
  const ClusterStats four =
      run_temporal_chain(4, s.to_taps(), small, kArria, fat, g4, iters);
  const double speedup = one.total_seconds / four.total_seconds;
  EXPECT_GT(speedup, 3.0);
  EXPECT_LE(speedup, 4.0);
  EXPECT_TRUE(compare_exact(g1, g4).identical());
}

TEST(TemporalChain, SlowLinkCapsTheChain) {
  // When inter-board streaming is slower than computing, the link sets
  // the stage time and exchange dominates.
  const StarStencil s = StarStencil::make_benchmark(2, 1);
  const AcceleratorConfig cfg = cfg2d(1, 32, 4, 2);
  Grid2D<float> g1(64, 48), g2(64, 48);
  g1.fill_random(1);
  g2.fill_random(1);
  const ClusterStats fat =
      run_temporal_chain(4, s.to_taps(), cfg, kArria, LinkSpec{100.0, 0.1},
                         g1, 32);
  const ClusterStats thin =
      run_temporal_chain(4, s.to_taps(), cfg, kArria, LinkSpec{0.001, 0.1},
                         g2, 32);
  EXPECT_GT(thin.total_seconds, fat.total_seconds);
  EXPECT_GT(thin.exchange_fraction(), 0.5);
}

}  // namespace
}  // namespace fpga_stencil
