// Tests for the roofline model and the paper's Section IV.B claims.
#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "model/roofline.hpp"

namespace fpga_stencil {
namespace {

TEST(Roofline, AttainableIsMinOfCeilings) {
  const DeviceSpec d = xeon_e5_2650v4();  // 700 GFLOP/s, 76.8 GB/s
  // Low intensity: bandwidth-limited.
  EXPECT_DOUBLE_EQ(roofline_attainable_gflops(d, 1.0), 76.8);
  // High intensity: compute-limited.
  EXPECT_DOUBLE_EQ(roofline_attainable_gflops(d, 100.0), 700.0);
  // The balance point.
  EXPECT_NEAR(roofline_attainable_gflops(d, d.flop_per_byte()), 700.0, 1e-9);
}

TEST(Roofline, EveryStencilMemoryBoundOnEveryDevice) {
  // Section IV.B: "for every stencil order, computation will be
  // memory-bound on all of our hardware."
  const DeviceSpec devices[] = {arria10_gx1150(), xeon_e5_2650v4(),
                                xeon_phi_7210f(), gtx_580(),
                                gtx_980ti(),      tesla_p100()};
  for (const DeviceSpec& d : devices) {
    for (int dims : {2, 3}) {
      for (int rad = 1; rad <= 4; ++rad) {
        EXPECT_TRUE(is_memory_bound(d, stencil_characteristics(dims, rad)))
            << d.name << " " << dims << "D rad " << rad;
      }
    }
  }
}

TEST(Roofline, FpgaMostBandwidthStarved) {
  // Section IV.B: the FPGA has the highest FLOP/Byte ratio of Table II.
  const DeviceSpec fpga = arria10_gx1150();
  const DeviceSpec others[] = {xeon_e5_2650v4(), xeon_phi_7210f(), gtx_580(),
                               gtx_980ti(), tesla_p100()};
  for (const DeviceSpec& d : others) {
    EXPECT_GT(fpga.flop_per_byte(), d.flop_per_byte()) << d.name;
  }
}

TEST(Roofline, RatioMatchesPaperArithmetic) {
  // Table IV, Arria 10 radius 1: 84.245 GCell/s * 8 B / 34.1 GB/s = 19.76.
  EXPECT_NEAR(
      roofline_ratio(arria10_gx1150(), stencil_characteristics(2, 1), 84.245),
      19.76, 0.01);
  // Table V, GTX 580 radius 1: 17.294 * 8 / 192.4 = 0.72.
  EXPECT_NEAR(
      roofline_ratio(gtx_580(), stencil_characteristics(3, 1), 17.294), 0.72,
      0.005);
}

TEST(Roofline, WithoutTemporalBlockingRatioBoundedByOne) {
  // A device sustaining its full bandwidth without temporal reuse updates
  // bw/8 GCell/s -- exactly ratio 1.0.
  const DeviceSpec d = xeon_phi_7210f();
  const StencilCharacteristics sc = stencil_characteristics(3, 4);
  const double max_gcells = d.peak_bw_gbps / double(sc.bytes_per_cell);
  EXPECT_DOUBLE_EQ(roofline_ratio(d, sc, max_gcells), 1.0);
}

TEST(Roofline, InvalidInputsThrow) {
  EXPECT_THROW(roofline_attainable_gflops(xeon_e5_2650v4(), 0.0),
               ConfigError);
  DeviceSpec no_bw = xeon_e5_2650v4();
  no_bw.peak_bw_gbps = 0.0;
  EXPECT_THROW(roofline_ratio(no_bw, stencil_characteristics(2, 1), 1.0),
               ConfigError);
}

}  // namespace
}  // namespace fpga_stencil
