// Tests for the OpenCL-C kernel generator, in particular the generated
// boundary-condition select chains (paper Section III.B).
#include <gtest/gtest.h>

#include "codegen/kernel_generator.hpp"
#include "stencil/box_stencil.hpp"
#include "stencil/star_stencil.hpp"

namespace fpga_stencil {
namespace {

AcceleratorConfig cfg(int dims, int rad, std::int64_t bx, std::int64_t by,
                      int pv, int pt) {
  AcceleratorConfig c;
  c.dims = dims;
  c.radius = rad;
  c.bsize_x = bx;
  c.bsize_y = by;
  c.parvec = pv;
  c.partime = pt;
  return c;
}

TEST(Codegen, Deterministic) {
  const CodegenOptions o{cfg(2, 2, 64, 1, 4, 3), true};
  EXPECT_EQ(generate_kernel_source(o), generate_kernel_source(o));
}

TEST(Codegen, BalancedDelimiters) {
  for (int dims : {2, 3}) {
    for (int rad : {1, 3}) {
      const CodegenOptions o{
          cfg(dims, rad, 64, dims == 3 ? 32 : 1, 4, 2), true};
      const SourceMetrics m = analyze_source(generate_kernel_source(o));
      EXPECT_TRUE(m.balanced) << dims << "D rad " << rad;
      EXPECT_GT(m.lines, 50);
    }
  }
}

TEST(Codegen, MacrosAndKernelsPresent) {
  const CodegenOptions o{cfg(3, 2, 64, 32, 4, 2), true};
  const std::string src = generate_kernel_source(o);
  for (const char* token :
       {"#define RAD 2", "#define DIM 3", "#define BSIZE_X 64",
        "#define BSIZE_Y 32", "#define PAR_VEC 4", "#define PAR_TIME 2",
        "#define SR_SIZE (2 * RAD * ROW_CELLS + PAR_VEC)",
        "__kernel void stencil_read", "__kernel void stencil_compute",
        "__kernel void stencil_write", "__attribute__((autorun))",
        "__attribute__((num_compute_units(PAR_TIME)))",
        "get_compute_id(0)", "read_channel_intel", "write_channel_intel",
        "cl_intel_channels"}) {
    EXPECT_NE(src.find(token), std::string::npos) << "missing: " << token;
  }
}

TEST(Codegen, AccumulationCountMatchesStencilShape) {
  // One `acc +=` per (lane, direction, distance): parvec * 2*dims * rad.
  for (int dims : {2, 3}) {
    for (int rad = 1; rad <= 4; ++rad) {
      for (int pv : {2, 4}) {
        const CodegenOptions o{
            cfg(dims, rad, 64, dims == 3 ? 32 : 1, pv, 2), false};
        const SourceMetrics m = analyze_source(generate_kernel_source(o));
        EXPECT_EQ(m.accumulations, std::int64_t(pv) * 2 * dims * rad)
            << dims << "D rad " << rad << " pv " << pv;
      }
    }
  }
}

TEST(Codegen, SelectCountGrowsWithRadius) {
  // Every neighbor access carries one clamping select, plus a fixed number
  // of ternaries in the read/write kernels and the in-grid select per lane.
  const int pv = 4;
  std::int64_t prev = 0;
  for (int rad = 1; rad <= 4; ++rad) {
    const CodegenOptions o{cfg(2, rad, 64, 1, pv, 2), false};
    const SourceMetrics m = analyze_source(generate_kernel_source(o));
    EXPECT_GT(m.selects, prev);
    // Boundary selects alone: parvec * 4 * rad (2D).
    EXPECT_GE(m.selects, std::int64_t(pv) * 4 * rad);
    prev = m.selects;
  }
}

TEST(Codegen, SelectDeltaIsExactlyTheBoundaryChains) {
  // Radius r+1 adds exactly 2*dims selects per lane over radius r.
  const int pv = 4;
  for (int dims : {2, 3}) {
    const CodegenOptions a{cfg(dims, 2, 64, dims == 3 ? 32 : 1, pv, 2), false};
    const CodegenOptions b{cfg(dims, 3, 64, dims == 3 ? 32 : 1, pv, 2), false};
    const std::int64_t da = analyze_source(generate_kernel_source(a)).selects;
    const std::int64_t db = analyze_source(generate_kernel_source(b)).selects;
    EXPECT_EQ(db - da, std::int64_t(pv) * 2 * dims);
  }
}

TEST(Codegen, UnrollPragmasPresent) {
  const CodegenOptions o{cfg(2, 1, 64, 1, 4, 2), false};
  const SourceMetrics m = analyze_source(generate_kernel_source(o));
  // Shift loop + load loop in compute, one in read, one in write.
  EXPECT_GE(m.unroll_pragmas, 4);
}

TEST(Codegen, LaneBodyStructure) {
  const AcceleratorConfig c = cfg(2, 2, 64, 1, 4, 2);
  const std::string body = generate_lane_body(c, 1);
  EXPECT_NE(body.find("out.d[1]"), std::string::npos);
  EXPECT_NE(body.find("COEF_C"), std::string::npos);
  EXPECT_NE(body.find("COEF_W_2"), std::string::npos);
  EXPECT_NE(body.find("COEF_N_1"), std::string::npos);
  EXPECT_EQ(body.find("COEF_B_1"), std::string::npos);  // no z in 2D
  EXPECT_THROW(generate_lane_body(c, 4), ConfigError);
  EXPECT_THROW(generate_lane_body(c, -1), ConfigError);
}

TEST(Codegen, CommentsToggle) {
  const AcceleratorConfig c = cfg(2, 1, 64, 1, 2, 1);
  const std::string with = generate_kernel_source({c, true});
  const std::string without = generate_kernel_source({c, false});
  EXPECT_GT(with.size(), without.size());
  EXPECT_EQ(without.find("// ----"), std::string::npos);
}

TEST(Codegen, CoefficientMacrosGuarded) {
  // Coefficients are overridable at aoc time: every definition is guarded.
  const std::string src = generate_kernel_source({cfg(3, 2, 64, 32, 2, 1),
                                                  false});
  const SourceMetrics m = analyze_source(src);
  (void)m;
  std::size_t guards = 0;
  for (std::size_t p = src.find("#ifndef COEF_"); p != std::string::npos;
       p = src.find("#ifndef COEF_", p + 1)) {
    ++guards;
  }
  EXPECT_EQ(guards, 1u + 6u * 2u);  // center + 6 directions * rad 2
}

TEST(Codegen, InvalidConfigRejected) {
  EXPECT_THROW(generate_kernel_source({cfg(2, 4, 16, 1, 4, 4), true}),
               ConfigError);
}

// ---- tap-set (box) kernel generation ----

TEST(TapCodegen, BoxKernelStructure) {
  const TapSet box = make_box_stencil(3, 1, 7);
  const CodegenOptions o{cfg(3, 1, 32, 16, 4, 2), true};
  const std::string src = generate_tap_kernel_source(box, o);
  const SourceMetrics m = analyze_source(src);
  EXPECT_TRUE(m.balanced);
  // One `acc +=` per lane per non-first tap: parvec * (27 - 1).
  EXPECT_EQ(m.accumulations, 4 * 26);
  for (const char* token :
       {"__constant float COEFS[27]", "#define STAGE_LAG 2",
        "#define DRAIN (PAR_TIME * STAGE_LAG)", "#define CENTER_BASE",
        "__kernel void stencil_compute", "__kernel void stencil_read",
        "__kernel void stencil_write"}) {
    EXPECT_NE(src.find(token), std::string::npos) << "missing: " << token;
  }
}

TEST(TapCodegen, StarTapsGetStageLagEqualRadius) {
  const TapSet star = StarStencil::make_benchmark(2, 3).to_taps();
  const CodegenOptions o{cfg(2, 3, 64, 1, 4, 2), false};
  const std::string src = generate_tap_kernel_source(star, o);
  EXPECT_NE(src.find("#define STAGE_LAG 3"), std::string::npos);
  // Star window: SR_SIZE = 2*rad*bsize + parvec = 388.
  EXPECT_NE(src.find("#define SR_SIZE 388"), std::string::npos);
}

TEST(TapCodegen, Deterministic) {
  const TapSet box = make_box_stencil(2, 2, 3);
  const CodegenOptions o{cfg(2, 2, 32, 1, 2, 1), true};
  EXPECT_EQ(generate_tap_kernel_source(box, o),
            generate_tap_kernel_source(box, o));
}

TEST(TapCodegen, CoefficientsAreLiterals) {
  const TapSet cubic = make_cubic27_stencil();
  const CodegenOptions o{cfg(3, 1, 16, 8, 2, 1), false};
  const std::string src = generate_tap_kernel_source(cubic, o);
  EXPECT_NE(src.find("0.5f"), std::string::npos);       // center coeff
  EXPECT_EQ(src.find("#ifndef COEF_"), std::string::npos);  // no macros
}

TEST(TapCodegen, ZeroOffsetTapHasNoSelect) {
  // A pure-center tap set generates no clamping selects in the lane body.
  const TapSet center_only(2, 1, {Tap{0, 0, 0, 1.0f}});
  const CodegenOptions o{cfg(2, 1, 16, 1, 2, 1), false};
  const std::string src = generate_tap_kernel_source(center_only, o);
  EXPECT_NE(src.find("sr[center + 0]"), std::string::npos);
}

TEST(TapCodegen, MismatchedDimsRejected) {
  const TapSet box2 = make_box_stencil(2, 1);
  EXPECT_THROW(
      generate_tap_kernel_source(box2, {cfg(3, 1, 16, 8, 2, 1), true}),
      ConfigError);
}

}  // namespace
}  // namespace fpga_stencil
