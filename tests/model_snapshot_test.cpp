// Golden-snapshot regression guards for the calibrated models.
//
// The paper-tolerance tests (fpga_resource_test, performance_model_test,
// harness_test) allow a few percent of slack; these snapshots pin the
// models' *current* outputs tightly, so an accidental constant change that
// stays inside the paper tolerance is still caught and must be
// re-snapshotted deliberately.
#include <gtest/gtest.h>

#include "harness/experiments.hpp"
#include "tune/tuner.hpp"

namespace fpga_stencil {
namespace {

struct Snapshot {
  int dims;
  int radius;
  double measured_gbps;
  double fmax_mhz;
  double power_watts;
  double efficiency;
};

// Regenerate with: build/bench/table3_fpga_results --csv
constexpr Snapshot kTable3[] = {
    {2, 1, 667.751039, 343.8, 66.184991, 0.86000000},
    {2, 2, 355.568529, 322.5, 72.976492, 0.86000000},
    {2, 3, 221.389646, 301.2, 68.714664, 0.86000000},
    {2, 4, 173.433573, 301.0, 69.743928, 0.86000000},
    {3, 1, 220.955039, 286.6, 71.586303, 0.62167655},
    {3, 2, 99.048811, 271.6, 62.199206, 0.65601068},
    {3, 3, 63.699060, 256.6, 61.644338, 0.66982143},
    {3, 4, 44.981565, 241.6, 59.866830, 0.66982143},
};

TEST(ModelSnapshot, Table3Rows) {
  const DeviceSpec dev = arria10_gx1150();
  for (const Snapshot& snap : kTable3) {
    const FpgaResultRow r = fpga_result_row(snap.dims, snap.radius, dev);
    SCOPED_TRACE(std::to_string(snap.dims) + "D r" +
                 std::to_string(snap.radius));
    EXPECT_NEAR(r.perf.measured_gbps, snap.measured_gbps,
                snap.measured_gbps * 1e-4);
    EXPECT_NEAR(r.fmax_mhz, snap.fmax_mhz, 0.05);
    EXPECT_NEAR(r.power_watts, snap.power_watts, 0.01);
    EXPECT_NEAR(r.perf.pipeline_efficiency, snap.efficiency, 1e-5);
  }
}

TEST(ModelSnapshot, ComparisonTableDigests) {
  // Cheap whole-table digests: sums over every row. A change anywhere in
  // the device models moves these.
  double sum2 = 0.0, sum3 = 0.0;
  for (const ComparisonRow& r : comparison_table(2)) {
    sum2 += r.gflops + r.gcells + r.power_efficiency + r.roofline_ratio;
  }
  for (const ComparisonRow& r : comparison_table(3)) {
    sum3 += r.gflops + r.gcells + r.power_efficiency + r.roofline_ratio;
  }
  EXPECT_NEAR(sum2, 5721.6060, 0.5);
  EXPECT_NEAR(sum3, 14486.5105, 0.5);
}

TEST(ModelSnapshot, TunedConfigsStayPut) {
  // The tuner's winners for the paper's 3D experiments are part of the
  // reproduction story (Section V.A); pin them.
  const DeviceSpec dev = arria10_gx1150();
  for (int rad = 1; rad <= 4; ++rad) {
    TunerOptions o;
    o.dims = 3;
    o.radius = rad;
    o.nx = 696;
    o.ny = 728;
    o.nz = 696;
    const TunedConfig best = best_config(dev, o);
    EXPECT_EQ(best.config.parvec, 16) << rad;
    EXPECT_EQ(best.config.partime, paper_config(3, rad).partime) << rad;
  }
}

}  // namespace
}  // namespace fpga_stencil
