// Tests for the HLS-style shift register, including a property test against
// a naive O(n)-shift model.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "pipeline/shift_register.hpp"

namespace fpga_stencil {
namespace {

TEST(ShiftRegister, ConstructionValidation) {
  EXPECT_THROW(ShiftRegister<float>(0, 1), ConfigError);
  EXPECT_THROW(ShiftRegister<float>(4, 0), ConfigError);
  EXPECT_THROW(ShiftRegister<float>(4, 5), ConfigError);
  EXPECT_NO_THROW(ShiftRegister<float>(4, 4));
}

TEST(ShiftRegister, StartsZeroed) {
  ShiftRegister<float> sr(6, 2);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(sr.tap(i), 0.0f);
}

TEST(ShiftRegister, NewestAtTail) {
  ShiftRegister<float> sr(6, 2);
  const float a[2] = {1.0f, 2.0f};
  sr.shift_in(a);
  EXPECT_EQ(sr.tap(4), 1.0f);
  EXPECT_EQ(sr.tap(5), 2.0f);
  EXPECT_EQ(sr.tap(0), 0.0f);
}

TEST(ShiftRegister, ShiftMovesTowardZero) {
  ShiftRegister<float> sr(4, 2);
  const float a[2] = {1.0f, 2.0f};
  const float b[2] = {3.0f, 4.0f};
  sr.shift_in(a);
  sr.shift_in(b);
  EXPECT_EQ(sr.tap(0), 1.0f);
  EXPECT_EQ(sr.tap(1), 2.0f);
  EXPECT_EQ(sr.tap(2), 3.0f);
  EXPECT_EQ(sr.tap(3), 4.0f);
}

TEST(ShiftRegister, OldestFallsOff) {
  ShiftRegister<float> sr(4, 2);
  const float a[2] = {1.0f, 2.0f};
  const float b[2] = {3.0f, 4.0f};
  const float c[2] = {5.0f, 6.0f};
  sr.shift_in(a);
  sr.shift_in(b);
  sr.shift_in(c);
  EXPECT_EQ(sr.tap(0), 3.0f);
  EXPECT_EQ(sr.tap(3), 6.0f);
}

TEST(ShiftRegister, ClearResets) {
  ShiftRegister<float> sr(4, 2);
  const float a[2] = {1.0f, 2.0f};
  sr.shift_in(a);
  sr.clear();
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(sr.tap(i), 0.0f);
}

TEST(ShiftRegister, TapOutOfRangeThrows) {
  ShiftRegister<float> sr(4, 2);
  EXPECT_THROW((void)sr.tap(-1), std::logic_error);
  EXPECT_THROW((void)sr.tap(4), std::logic_error);
}

TEST(ShiftRegister, WrongWidthShiftThrows) {
  ShiftRegister<float> sr(8, 4);
  const float a[2] = {1.0f, 2.0f};
  EXPECT_THROW(sr.shift_in(std::span<const float>(a, 2)), std::logic_error);
}

/// Naive reference: a literal shift of a std::vector.
class NaiveShift {
 public:
  NaiveShift(std::int64_t size, std::int64_t width)
      : width_(width), data_(static_cast<std::size_t>(size), 0.0f) {}
  void shift_in(std::span<const float> v) {
    data_.erase(data_.begin(), data_.begin() + width_);
    data_.insert(data_.end(), v.begin(), v.end());
  }
  float tap(std::int64_t i) const { return data_[std::size_t(i)]; }

 private:
  std::int64_t width_;
  std::vector<float> data_;
};

class ShiftRegisterProperty
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ShiftRegisterProperty, MatchesNaiveModel) {
  const auto [size, width] = GetParam();
  ShiftRegister<float> sr(size, width);
  NaiveShift naive(size, width);
  SplitMix64 rng(size * 131 + width);
  std::vector<float> in(static_cast<std::size_t>(width));
  for (int step = 0; step < 200; ++step) {
    for (float& v : in) v = rng.next_float(-1.0f, 1.0f);
    sr.shift_in(in);
    naive.shift_in(in);
    for (std::int64_t i = 0; i < size; ++i) {
      ASSERT_EQ(sr.tap(i), naive.tap(i))
          << "size=" << size << " width=" << width << " step=" << step
          << " tap=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShiftRegisterProperty,
    ::testing::Values(std::pair{1, 1}, std::pair{4, 1}, std::pair{4, 2},
                      std::pair{4, 4}, std::pair{6, 2}, std::pair{7, 3},
                      std::pair{33, 8}, std::pair{130, 16},
                      std::pair{515, 4}));

TEST(PlanarShiftRegister, RingMapsStreamIndicesToSlots) {
  // depth 3, planes of 4 cells over caller storage: plane p lands in slot
  // p mod depth, so writing plane p evicts plane p - depth and the last
  // `depth` planes are always resident.
  std::vector<float> storage(3 * 4, -1.0f);
  PlanarShiftRegister<float> sr(storage.data(), 3, 4);
  EXPECT_EQ(sr.depth(), 3);
  EXPECT_EQ(sr.plane_cells(), 4);
  for (std::int64_t p = 0; p < 10; ++p) {
    float* plane = sr.plane(p);
    EXPECT_EQ(plane, storage.data() + (p % 3) * 4);
    std::fill(plane, plane + 4, float(p));
    // The retained window is [p - depth + 1, p].
    for (std::int64_t back = 0; back < 3 && back <= p; ++back) {
      EXPECT_EQ(sr.plane(p - back)[0], float(p - back));
    }
  }
}

TEST(PlanarShiftRegister, RejectsDegenerateGeometry) {
  std::vector<float> storage(4);
  EXPECT_THROW(PlanarShiftRegister<float>(nullptr, 2, 2), ConfigError);
  EXPECT_THROW(PlanarShiftRegister<float>(storage.data(), 0, 2), ConfigError);
  EXPECT_THROW(PlanarShiftRegister<float>(storage.data(), 2, 0), ConfigError);
}

}  // namespace
}  // namespace fpga_stencil
