// Tests for the StencilEngine session API: plan-cache accounting, buffer
// pool reuse across jobs, concurrent submission bit-exactness, admission
// backpressure, routing, and failure isolation.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "engine/stencil_engine.hpp"
#include "fault/fault_injector.hpp"
#include "grid/grid_compare.hpp"
#include "stencil/box_stencil.hpp"
#include "stencil/reference.hpp"
#include "stencil/star_stencil.hpp"

namespace fpga_stencil {
namespace {

AcceleratorConfig cfg2d() {
  AcceleratorConfig c;
  c.dims = 2;
  c.radius = 1;
  c.bsize_x = 32;
  c.parvec = 4;
  c.partime = 2;
  return c;
}

AcceleratorConfig cfg3d() {
  AcceleratorConfig c;
  c.dims = 3;
  c.radius = 1;
  c.bsize_x = 16;
  c.bsize_y = 8;
  c.parvec = 4;
  c.partime = 2;
  return c;
}

Grid2D<float> grid2d(unsigned seed = 3) {
  Grid2D<float> g(48, 20);
  g.fill_random(seed);
  return g;
}

Grid3D<float> grid3d(unsigned seed = 4) {
  Grid3D<float> g(20, 14, 10);
  g.fill_random(seed);
  return g;
}

TEST(Engine, SingleJobMatchesReference) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  Grid2D<float> want = grid2d();
  reference_run(taps, want, 4);

  StencilEngine engine;
  JobResult result = engine.run(JobSpec(taps, cfg2d(), grid2d(), 4));
  EXPECT_TRUE(compare_exact(result.grid2d(), want).identical());
  EXPECT_EQ(result.backend, Backend::sync_sim);
  EXPECT_EQ(result.stats.time_steps, 4);
  EXPECT_NE(result.kernel_fingerprint, 0u);
  EXPECT_GE(result.run_ns, 0);
  EXPECT_GE(result.queue_ns, 0);
}

TEST(Engine, PlanCacheHitMissAccounting) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  StencilEngine engine({.workers = 1});

  JobResult first = engine.run(JobSpec(taps, cfg2d(), grid2d(), 2));
  EXPECT_FALSE(first.plan_cache_hit);
  JobResult second = engine.run(JobSpec(taps, cfg2d(), grid2d(), 2));
  EXPECT_TRUE(second.plan_cache_hit);
  EXPECT_EQ(first.kernel_fingerprint, second.kernel_fingerprint);
  // A different grid shape is a different plan.
  Grid2D<float> other(64, 20);
  other.fill_random(3);
  JobResult third = engine.run(JobSpec(taps, cfg2d(), std::move(other), 2));
  EXPECT_FALSE(third.plan_cache_hit);

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.plan_cache_hits, 1);
  EXPECT_EQ(stats.plan_cache_misses, 2);
  EXPECT_EQ(stats.jobs_submitted, 3);
  EXPECT_EQ(stats.jobs_completed, 3);
  EXPECT_EQ(stats.jobs_failed, 0);
  // The engine-local telemetry carries the same counters.
  const MetricsSnapshot snap = engine.telemetry().metrics().snapshot();
  EXPECT_EQ(snap.value_or("engine.plan_cache_hit", -1), 1);
  EXPECT_EQ(snap.value_or("engine.plan_cache_miss", -1), 2);
  EXPECT_EQ(snap.value_or("engine.jobs_completed", -1), 3);
}

TEST(Engine, BufferPoolStopsAllocatingAfterWarmup) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  StencilEngine engine({.workers = 1});

  (void)engine.run(JobSpec(taps, cfg2d(), grid2d(), 3));
  const std::int64_t warm_allocations = engine.stats().pool_allocations;
  for (int i = 0; i < 8; ++i) {
    (void)engine.run(JobSpec(taps, cfg2d(), grid2d(unsigned(i)), 3));
  }
  const EngineStats stats = engine.stats();
  // Zero buffer growth after warm-up: every later job reuses the first
  // job's scratch storage.
  EXPECT_EQ(stats.pool_allocations, warm_allocations);
  EXPECT_GE(stats.pool_reuses, 8);
  EXPECT_EQ(stats.pool_acquires, 9);
}

TEST(Engine, ConcurrentStress64JobsBitExact) {
  const TapSet star2 = StarStencil::make_benchmark(2, 1, 5).to_taps();
  const TapSet box2 = make_box_stencil(2, 1, 21);
  const TapSet star3 = StarStencil::make_benchmark(3, 1, 9).to_taps();
  const int iters = 3;

  // Expected outputs, one per distinct spec, via the naive reference.
  Grid2D<float> want_star2 = grid2d();
  reference_run(star2, want_star2, iters);
  Grid2D<float> want_box2 = grid2d();
  reference_run(box2, want_box2, iters);
  Grid3D<float> want_star3 = grid3d();
  reference_run(star3, want_star3, iters);

  StencilEngine engine({.workers = 4, .queue_capacity = 128});
  // Warm the cache so the stress-phase hit rate is deterministic (>0.9
  // requires the misses to be bounded by the distinct spec count).
  (void)engine.run(JobSpec(star2, cfg2d(), grid2d(), iters));
  (void)engine.run(JobSpec(box2, cfg2d(), grid2d(), iters));
  (void)engine.run(JobSpec(star3, cfg3d(), grid3d(), iters));

  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 16;
  std::vector<std::vector<JobHandle>> handles(kThreads);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kJobsPerThread; ++i) {
        const int kind = (t + i) % 4;
        JobSpec spec = [&]() -> JobSpec {
          switch (kind) {
            case 0: return {star2, cfg2d(), grid2d(), iters};
            case 1: return {box2, cfg2d(), grid2d(), iters};
            case 2: return {star3, cfg3d(), grid3d(), iters};
            default: {
              JobSpec s(star2, cfg2d(), grid2d(), iters);
              s.backend = Backend::concurrent;
              return s;
            }
          }
        }();
        handles[std::size_t(t)].push_back(engine.submit(std::move(spec)));
      }
    });
  }
  for (std::thread& t : submitters) t.join();

  int verified = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kJobsPerThread; ++i) {
      JobResult& r = handles[std::size_t(t)][std::size_t(i)].wait();
      switch ((t + i) % 4) {
        case 2:
          EXPECT_TRUE(compare_exact(r.grid3d(), want_star3).identical());
          break;
        case 1:
          EXPECT_TRUE(compare_exact(r.grid2d(), want_box2).identical());
          break;
        default:
          EXPECT_TRUE(compare_exact(r.grid2d(), want_star2).identical());
          break;
      }
      ++verified;
    }
  }
  EXPECT_EQ(verified, kThreads * kJobsPerThread);

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.jobs_submitted, 3 + 64);
  EXPECT_EQ(stats.jobs_completed, 3 + 64);
  EXPECT_EQ(stats.jobs_failed, 0);
  EXPECT_GT(stats.cache_hit_rate(), 0.9);
}

TEST(Engine, RejectAdmissionThrowsWhenQueueIsFull) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  StencilEngine engine({.workers = 1,
                        .queue_capacity = 2,
                        .admission = EngineOptions::Admission::reject,
                        .start_paused = true});
  JobHandle a = engine.submit(JobSpec(taps, cfg2d(), grid2d(), 2));
  JobHandle b = engine.submit(JobSpec(taps, cfg2d(), grid2d(), 2));
  EXPECT_THROW((void)engine.submit(JobSpec(taps, cfg2d(), grid2d(), 2)),
               EngineOverloadedError);
  EXPECT_EQ(engine.stats().jobs_rejected, 1);

  engine.resume();
  (void)a.wait();
  (void)b.wait();
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.jobs_completed, 2);
  EXPECT_EQ(stats.queue_high_water, 2);
}

TEST(Engine, BlockAdmissionBoundsTheQueue) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  std::vector<JobHandle> handles;
  {
    StencilEngine engine({.workers = 1,
                          .queue_capacity = 1,
                          .admission = EngineOptions::Admission::block,
                          .start_paused = true});
    std::thread submitter([&] {
      for (int i = 0; i < 4; ++i) {
        handles.push_back(engine.submit(JobSpec(taps, cfg2d(), grid2d(), 2)));
      }
    });
    // The submitter blocks on the full queue until workers drain it.
    engine.resume();
    submitter.join();
    // Backpressure held the queue at its capacity the whole time.
    EXPECT_LE(engine.stats().queue_high_water, 1);
  }  // engine destructor drains every accepted job
  for (JobHandle& h : handles) {
    EXPECT_NO_THROW((void)h.wait());
  }
}

TEST(Engine, FailedJobDoesNotPoisonSubsequentJobs) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  StencilEngine engine({.workers = 1});

  AcceleratorConfig bad = cfg2d();
  bad.bsize_x = 4;  // halo eats the block: plan validation fails
  JobHandle failing = engine.submit(JobSpec(taps, bad, grid2d(), 2));
  EXPECT_THROW((void)failing.wait(), ConfigError);
  EXPECT_EQ(failing.status(), JobStatus::failed);

  Grid2D<float> want = grid2d();
  reference_run(taps, want, 4);
  JobResult ok = engine.run(JobSpec(taps, cfg2d(), grid2d(), 4));
  EXPECT_TRUE(compare_exact(ok.grid2d(), want).identical());

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.jobs_failed, 1);
  EXPECT_EQ(stats.jobs_completed, 1);
}

TEST(Engine, FaultInjectedJobIsServedResilientlyAndIsolated) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  Grid2D<float> want = grid2d();
  reference_run(taps, want, 4);

  FaultInjector injector(FaultPlan::parse("seed=3,kernel_hang:n=1"));
  StencilEngine engine({.workers = 1});

  JobSpec faulty(taps, cfg2d(), grid2d(), 4);
  faulty.injector = &injector;  // automatic routing -> resilient runner
  JobResult r = engine.run(std::move(faulty));
  EXPECT_EQ(r.backend, Backend::resilient);
  EXPECT_TRUE(compare_exact(r.grid2d(), want).identical());
  EXPECT_GE(r.stats.watchdog_trips + r.stats.checksum_failures +
                r.stats.faults_injected,
            1);

  // The next (clean) job sees a healthy engine.
  JobResult clean = engine.run(JobSpec(taps, cfg2d(), grid2d(), 4));
  EXPECT_EQ(clean.backend, Backend::sync_sim);
  EXPECT_TRUE(compare_exact(clean.grid2d(), want).identical());
  EXPECT_EQ(engine.stats().jobs_failed, 0);
}

TEST(Engine, RoutesClusterJobsAndStaysBitExact) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  Grid2D<float> want = grid2d();
  reference_run(taps, want, 4);

  StencilEngine engine;
  JobSpec spec(taps, cfg2d(), grid2d(), 4);
  spec.boards = 3;  // automatic routing -> cluster
  JobResult r = engine.run(std::move(spec));
  EXPECT_EQ(r.backend, Backend::cluster);
  EXPECT_EQ(r.cluster.boards, 3);
  EXPECT_GT(r.cluster.total_seconds, 0.0);
  EXPECT_TRUE(compare_exact(r.grid2d(), want).identical());
}

TEST(Engine, PerSpecSubmitPreservesOrderAndCompletes) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  StencilEngine engine({.workers = 2});
  std::vector<JobHandle> handles;
  for (int i = 0; i < 8; ++i) {
    JobSpec s(taps, cfg2d(), grid2d(), 2);
    s.label = "batch-" + std::to_string(i);
    handles.push_back(engine.submit(std::move(s)));
  }
  ASSERT_EQ(handles.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(handles[std::size_t(i)].wait().label,
              "batch-" + std::to_string(i));
  }
  engine.wait_idle();
  EXPECT_EQ(engine.stats().jobs_completed, 8);
}

TEST(Engine, SubmitRejectsMismatchedDimsEagerly) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  StencilEngine engine;
  // 2D config, 3D grid: caught at submit, not in the worker.
  EXPECT_THROW((void)engine.submit(JobSpec(taps, cfg2d(), grid3d(), 2)),
               ConfigError);
  JobSpec negative(taps, cfg2d(), grid2d(), -1);
  EXPECT_THROW((void)engine.submit(std::move(negative)), ConfigError);
}

// -------------------------------------------------------------------------
// Cancellation, deadlines, lifecycle, and the circuit breaker (PR 6).

/// A spec big enough that the job is still running when a cancel lands.
JobSpec slow_spec(const TapSet& taps) {
  Grid2D<float> g(256, 192);
  g.fill_random(9);
  return JobSpec(taps, cfg2d(), std::move(g), 5000);
}

TEST(EngineCancel, RunningBlockParallelJobCancelsWithinOneBlockTime) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  StencilEngine engine({.workers = 2});
  JobSpec spec = slow_spec(taps);
  spec.backend = Backend::block_parallel;
  spec.workers = 4;
  JobHandle h = engine.submit(std::move(spec));
  // Let it get properly underway before cancelling.
  while (h.status() == JobStatus::queued) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto cancel_at = std::chrono::steady_clock::now();
  h.cancel();
  // Acceptance bound: terminal within one block's streaming time; 2 s is
  // orders of magnitude above that for this spec, immune to CI jitter.
  ASSERT_TRUE(h.wait_for(std::chrono::milliseconds(2000)));
  const auto latency = std::chrono::steady_clock::now() - cancel_at;
  EXPECT_LT(latency, std::chrono::milliseconds(2000));
  EXPECT_EQ(h.status(), JobStatus::cancelled);
  EXPECT_THROW((void)h.wait(), CancelledError);
  engine.wait_idle();
  // Cooperative unwind returned every lease (scratch + worker lanes).
  EXPECT_EQ(engine.buffer_pool().outstanding(), 0);
  EXPECT_EQ(engine.stats().jobs_cancelled, 1);
  EXPECT_EQ(engine.stats().jobs_failed, 0);
}

TEST(EngineCancel, QueuedJobNeverRunsAndSiblingsAreUnaffected) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  Grid2D<float> want = grid2d();
  reference_run(taps, want, 4);

  StencilEngine engine({.workers = 1, .start_paused = true});
  JobHandle keep = engine.submit(JobSpec(taps, cfg2d(), grid2d(), 4));
  JobHandle drop = engine.submit(JobSpec(taps, cfg2d(), grid2d(), 4));
  drop.cancel();  // still parked in the queue
  engine.resume();
  JobResult& r = keep.wait();
  EXPECT_TRUE(compare_exact(r.grid2d(), want).identical());
  EXPECT_THROW((void)drop.wait(), CancelledError);
  EXPECT_EQ(drop.status(), JobStatus::cancelled);
  engine.wait_idle();
  // The cancelled job never executed: exactly one job's worth of work.
  EXPECT_EQ(engine.stats().jobs_completed, 1);
  EXPECT_EQ(engine.stats().jobs_cancelled, 1);
}

TEST(EngineCancel, DeadlineExpiresInQueue) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  StencilEngine engine({.workers = 1, .start_paused = true});
  JobSpec spec(taps, cfg2d(), grid2d(), 4);
  spec.deadline = std::chrono::milliseconds(10);
  JobHandle h = engine.submit(std::move(spec));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  engine.resume();
  EXPECT_THROW((void)h.wait(), DeadlineExceededError);
  EXPECT_EQ(h.status(), JobStatus::deadline_exceeded);
  EXPECT_EQ(engine.stats().deadline_exceeded, 1);
  EXPECT_EQ(engine.stats().jobs_cancelled, 0);
}

TEST(EngineCancel, DeadlineExpiresMidRun) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  StencilEngine engine({.workers = 1});
  JobSpec spec = slow_spec(taps);
  spec.deadline = std::chrono::milliseconds(30);
  JobHandle h = engine.submit(std::move(spec));
  ASSERT_TRUE(h.wait_for(std::chrono::milliseconds(5000)));
  EXPECT_EQ(h.status(), JobStatus::deadline_exceeded);
  EXPECT_THROW((void)h.wait(), DeadlineExceededError);
  engine.wait_idle();
  EXPECT_EQ(engine.buffer_pool().outstanding(), 0);
}

TEST(EngineCancel, WaitOrCancelComposesWaitAndCancel) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  StencilEngine engine({.workers = 2});
  // A fast job beats the timeout: done, nothing cancelled.
  JobHandle fast = engine.submit(JobSpec(taps, cfg2d(), grid2d(), 2));
  EXPECT_EQ(fast.wait_or_cancel(std::chrono::milliseconds(10000)),
            JobStatus::done);
  // A slow job does not: wait_or_cancel cancels it and reports so,
  // without throwing.
  JobHandle slow = engine.submit(slow_spec(taps));
  EXPECT_EQ(slow.wait_or_cancel(std::chrono::milliseconds(20)),
            JobStatus::cancelled);
  engine.wait_idle();
  EXPECT_EQ(engine.stats().jobs_cancelled, 1);
}

TEST(EngineLifecycle, DrainFinishesAcceptedAndRejectsNew) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  Grid2D<float> want = grid2d();
  reference_run(taps, want, 4);

  StencilEngine engine({.workers = 2, .start_paused = true});
  EXPECT_EQ(engine.state(), EngineState::running);
  std::vector<JobHandle> handles;
  for (int i = 0; i < 4; ++i) {
    handles.push_back(engine.submit(JobSpec(taps, cfg2d(), grid2d(), 4)));
  }
  engine.drain();  // unparks the pool, runs everything accepted
  EXPECT_EQ(engine.state(), EngineState::stopped);
  for (JobHandle& h : handles) {
    EXPECT_TRUE(compare_exact(h.wait().grid2d(), want).identical());
  }
  EXPECT_THROW((void)engine.submit(JobSpec(taps, cfg2d(), grid2d(), 2)),
               EngineStoppedError);
  EXPECT_EQ(engine.stats().jobs_completed, 4);
}

TEST(EngineLifecycle, ShutdownDeadlineCancelsStragglers) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  StencilEngine engine({.workers = 1});
  std::vector<JobHandle> handles;
  for (int i = 0; i < 3; ++i) handles.push_back(engine.submit(slow_spec(taps)));
  // Far too little patience for three slow jobs on one worker: the
  // engine must cancel the stragglers and still come down cleanly.
  EXPECT_FALSE(engine.shutdown(std::chrono::milliseconds(30)));
  EXPECT_EQ(engine.state(), EngineState::stopped);
  int cancelled = 0;
  for (JobHandle& h : handles) {
    ASSERT_TRUE(h.finished());
    if (h.status() == JobStatus::cancelled) ++cancelled;
  }
  EXPECT_GE(cancelled, 1);
  EXPECT_EQ(engine.buffer_pool().outstanding(), 0);
  EXPECT_THROW((void)engine.submit(JobSpec(taps, cfg2d(), grid2d(), 2)),
               EngineStoppedError);
}

TEST(EngineLifecycle, ShutdownIsGracefulWhenJobsFinishInTime) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  StencilEngine engine({.workers = 2});
  JobHandle h = engine.submit(JobSpec(taps, cfg2d(), grid2d(), 4));
  EXPECT_TRUE(engine.shutdown(std::chrono::milliseconds(10000)));
  EXPECT_EQ(h.status(), JobStatus::done);
  EXPECT_EQ(engine.stats().jobs_cancelled, 0);
}

TEST(EngineBreaker, TripsReroutesAndRecovers) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  Grid2D<float> want = grid2d();
  reference_run(taps, want, 4);

  StencilEngine engine({.workers = 1,
                        .breaker_threshold = 2,
                        .breaker_cooldown = std::chrono::milliseconds(50)});
  // Two consecutive fault-injected failures on the concurrent backend.
  // Per-job injectors: each hang is private to its job.
  for (int i = 0; i < 2; ++i) {
    FaultInjector fi(FaultPlan::parse("seed=" + std::to_string(i + 1) +
                                      ",kernel_hang:p=1:n=inf"));
    JobSpec spec(taps, cfg2d(), grid2d(), 4);
    spec.backend = Backend::concurrent;  // explicit: no resilient rescue
    spec.injector = &fi;
    spec.watchdog_deadline = std::chrono::milliseconds(40);
    JobHandle h = engine.submit(std::move(spec));
    EXPECT_THROW((void)h.wait(), PassAbortedError);
    engine.wait_idle();  // the injector must outlive the execution
  }
  EXPECT_EQ(engine.breaker_state(Backend::concurrent), BreakerState::open);
  EXPECT_GE(engine.stats().breaker_trips, 1);

  // While open, concurrent jobs reroute to the sync fallback -- and
  // still produce the bit-exact answer.
  JobSpec rerouted(taps, cfg2d(), grid2d(), 4);
  rerouted.backend = Backend::concurrent;
  JobResult r = engine.run(std::move(rerouted));
  EXPECT_TRUE(r.rerouted);
  EXPECT_EQ(r.backend, Backend::sync_sim);
  EXPECT_TRUE(compare_exact(r.grid2d(), want).identical());
  EXPECT_GE(engine.stats().breaker_reroutes, 1);

  // After the cooldown a clean probe closes the breaker.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  JobSpec probe(taps, cfg2d(), grid2d(), 4);
  probe.backend = Backend::concurrent;
  JobResult pr = engine.run(std::move(probe));
  EXPECT_FALSE(pr.rerouted);
  EXPECT_EQ(pr.backend, Backend::concurrent);
  EXPECT_TRUE(compare_exact(pr.grid2d(), want).identical());
  EXPECT_EQ(engine.breaker_state(Backend::concurrent), BreakerState::closed);
  // Other backends were never charged.
  EXPECT_EQ(engine.breaker_state(Backend::block_parallel),
            BreakerState::closed);
}

TEST(EngineBreaker, ConfigErrorsDoNotCharge) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  StencilEngine engine({.workers = 1, .breaker_threshold = 1});
  // A spec whose plan validation fails in the worker: bsize too small
  // for the halo leaves no compute region.
  AcceleratorConfig bad = cfg2d();
  bad.bsize_x = 2 * bad.partime * bad.radius;  // csize == 0
  JobSpec spec(taps, bad, grid2d(), 2);
  spec.backend = Backend::block_parallel;
  JobHandle h = engine.submit(std::move(spec));
  EXPECT_THROW((void)h.wait(), ConfigError);
  // Even at threshold 1 the breaker stays closed: the spec was at
  // fault, not the backend.
  EXPECT_EQ(engine.breaker_state(Backend::block_parallel),
            BreakerState::closed);
  EXPECT_EQ(engine.stats().breaker_trips, 0);
}

// -------------------------------------------------------------------------
// Serving-tier JobSpec surface (PR 8): QoS scheduling, metric prefixes,
// chunked delivery, terminal hooks.

TEST(EngineQos, InteractiveDispatchesBeforeBatchBacklog) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  StencilEngine engine({.workers = 1, .queue_capacity = 64,
                        .start_paused = true});
  std::vector<JobHandle> batch, interactive;
  for (int i = 0; i < 6; ++i) {
    JobSpec s(taps, cfg2d(), grid2d(), 2);
    s.qos = QosClass::batch;
    batch.push_back(engine.submit(std::move(s)));
  }
  for (int i = 0; i < 2; ++i) {
    JobSpec s(taps, cfg2d(), grid2d(), 2);
    s.qos = QosClass::interactive;
    interactive.push_back(engine.submit(std::move(s)));
  }
  engine.resume();
  // Despite submitting last into a 6-deep batch backlog, the interactive
  // jobs are dispatched first (weights 8/4/1, one worker).
  std::int64_t max_interactive = -1, min_batch = 1 << 20;
  for (JobHandle& h : interactive) {
    max_interactive = std::max(max_interactive, h.wait().dispatch_seq);
  }
  for (JobHandle& h : batch) {
    min_batch = std::min(min_batch, h.wait().dispatch_seq);
  }
  EXPECT_LT(max_interactive, min_batch);
  EXPECT_EQ(max_interactive, 1);  // seqs 0 and 1
}

TEST(EngineQos, PriorityBreaksTiesWithinOneClass) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  StencilEngine engine({.workers = 1, .start_paused = true});
  JobSpec low(taps, cfg2d(), grid2d(), 2);
  low.priority = 0;
  JobSpec high(taps, cfg2d(), grid2d(), 2);
  high.priority = 7;
  JobHandle hl = engine.submit(std::move(low));
  JobHandle hh = engine.submit(std::move(high));
  engine.resume();
  EXPECT_LT(hh.wait().dispatch_seq, hl.wait().dispatch_seq);
}

TEST(EngineTelemetry, DistinctPrefixesDoNotCollideInOneRegistry) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  Telemetry shared;
  StencilEngine a({.workers = 1, .telemetry = &shared,
                   .metrics_prefix = "engine.shard0"});
  StencilEngine b({.workers = 1, .telemetry = &shared,
                   .metrics_prefix = "engine.shard1"});
  (void)a.run(JobSpec(taps, cfg2d(), grid2d(), 2));
  (void)a.run(JobSpec(taps, cfg2d(), grid2d(), 2));
  (void)b.run(JobSpec(taps, cfg2d(), grid2d(), 2));
  // Each engine's stats() reads back only its own counters.
  EXPECT_EQ(a.stats().jobs_completed, 2);
  EXPECT_EQ(b.stats().jobs_completed, 1);
  const MetricsSnapshot snap = shared.metrics().snapshot();
  EXPECT_EQ(snap.value_or("engine.shard0.jobs_completed", -1), 2);
  EXPECT_EQ(snap.value_or("engine.shard1.jobs_completed", -1), 1);
  // Nothing leaked into the legacy shared name.
  EXPECT_EQ(snap.value_or("engine.jobs_completed", -1), -1);
}

TEST(EngineChunks, SinkReceivesOrderedBandsThatReassembleExactly) {
  const TapSet taps = StarStencil::make_benchmark(3, 1, 9).to_taps();
  Grid3D<float> want = grid3d();
  reference_run(taps, want, 3);

  StencilEngine engine({.workers = 1});
  JobSpec spec(taps, cfg3d(), grid3d(), 3);
  std::vector<float> assembled(std::size_t(20 * 14 * 10), -1.0f);
  std::int64_t chunks = 0, planes = 0;
  bool saw_last = false;
  spec.chunk_values = 20 * 14 * 2;  // two z-planes per chunk
  spec.sink = [&](const ResultChunk& c) {
    EXPECT_EQ(c.dims, 3);
    EXPECT_EQ(c.index, chunks);
    EXPECT_EQ(c.start, planes);
    std::copy(c.data, c.data + c.values,
              assembled.begin() + c.start * c.nx * c.ny);
    planes += c.count;
    ++chunks;
    saw_last = c.last;
  };
  JobResult r = engine.run(std::move(spec));
  EXPECT_EQ(chunks, 5);
  EXPECT_EQ(planes, 10);
  EXPECT_TRUE(saw_last);
  EXPECT_EQ(r.chunks_delivered, chunks);
  // The stream reassembles to exactly the grid the result carries, which
  // itself matches the reference.
  EXPECT_TRUE(compare_exact(r.grid3d(), want).identical());
  ASSERT_EQ(assembled.size(), r.grid3d().size());
  EXPECT_TRUE(
      std::equal(assembled.begin(), assembled.end(), r.grid3d().data()));
}

TEST(EngineChunks, SinkOnlyDropsTheServerSideGrid) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  Grid2D<float> want = grid2d();
  reference_run(taps, want, 4);

  StencilEngine engine({.workers = 1});
  JobSpec spec(taps, cfg2d(), grid2d(), 4);
  Grid2D<float> assembled(48, 20);
  spec.sink = [&](const ResultChunk& c) {
    std::copy(c.data, c.data + c.values,
              assembled.data() + c.start * c.nx);
  };
  spec.sink_only = true;
  JobResult r = engine.run(std::move(spec));
  // The result grid is a placeholder; the stream was the delivery.
  EXPECT_EQ(r.grid2d().nx(), 1);
  EXPECT_GE(r.chunks_delivered, 1);
  EXPECT_TRUE(compare_exact(assembled, want).identical());
}

TEST(EngineHooks, OnTerminalFiresExactlyOncePerOutcome) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  StencilEngine engine({.workers = 1});

  std::atomic<int> done_calls{0};
  JobSpec ok(taps, cfg2d(), grid2d(), 2);
  ok.on_terminal = [&](JobStatus s) {
    EXPECT_EQ(s, JobStatus::done);
    ++done_calls;
  };
  (void)engine.run(std::move(ok));
  EXPECT_EQ(done_calls.load(), 1);

  std::atomic<int> cancel_calls{0};
  StencilEngine paused({.workers = 1, .start_paused = true});
  JobSpec doomed(taps, cfg2d(), grid2d(), 2);
  doomed.on_terminal = [&](JobStatus s) {
    EXPECT_EQ(s, JobStatus::cancelled);
    ++cancel_calls;
  };
  JobHandle h = paused.submit(std::move(doomed));
  h.cancel();
  paused.resume();
  EXPECT_THROW((void)h.wait(), CancelledError);
  paused.wait_idle();
  EXPECT_EQ(cancel_calls.load(), 1);
}

TEST(EngineCancel, CancelLatencyHistogramIsRecorded) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  StencilEngine engine({.workers = 1});
  JobHandle h = engine.submit(slow_spec(taps));
  while (h.status() == JobStatus::queued) std::this_thread::yield();
  h.cancel();
  (void)h.wait_or_cancel(std::chrono::milliseconds(5000));
  engine.wait_idle();
  const MetricsSnapshot snap = engine.telemetry().metrics().snapshot();
  const MetricSample* lat = snap.find("engine.cancel_latency_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->value, 1);  // one observation
  EXPECT_GT(lat->sum, 0);
  EXPECT_EQ(snap.value_or("engine.jobs_cancelled", -1), 1);
}

}  // namespace
}  // namespace fpga_stencil
