// Tests for the fault-injection framework itself: the FaultPlan grammar,
// the deterministic seeded injector, the retry helper, the watchdog, the
// checksum oracle, and checkpoint/restart.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "fault/checkpoint.hpp"
#include "fault/checksum.hpp"
#include "fault/fault_injector.hpp"
#include "fault/retry.hpp"
#include "fault/watchdog.hpp"

namespace fpga_stencil {
namespace {

using namespace std::chrono_literals;

// Backoff delays scaled down so the retry tests run in microseconds.
RetryPolicy fast_policy(int max_attempts) {
  RetryPolicy p;
  p.max_attempts = max_attempts;
  p.base_delay = std::chrono::microseconds(1);
  return p;
}

// ---------------------------------------------------------------- plan

TEST(FaultPlan, SiteNamesRoundTrip) {
  for (int i = 0; i < kFaultSiteCount; ++i) {
    const FaultSite site = static_cast<FaultSite>(i);
    const auto back = fault_site_from_name(fault_site_name(site));
    ASSERT_TRUE(back.has_value()) << fault_site_name(site);
    EXPECT_EQ(*back, site);
  }
  EXPECT_FALSE(fault_site_from_name("flux_capacitor").has_value());
}

TEST(FaultPlan, ParseGrammar) {
  const FaultPlan plan =
      FaultPlan::parse("seed=42,shim_build:n=2,seu_bit_flip:p=0.5:n=inf,"
                       "board_dropout");
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.specs.size(), 3u);
  EXPECT_EQ(plan.specs[0].site, FaultSite::shim_build);
  EXPECT_EQ(plan.specs[0].max_fires, 2);
  EXPECT_DOUBLE_EQ(plan.specs[0].probability, 1.0);
  EXPECT_EQ(plan.specs[1].site, FaultSite::seu_bit_flip);
  EXPECT_DOUBLE_EQ(plan.specs[1].probability, 0.5);
  EXPECT_TRUE(plan.specs[1].unlimited());
  EXPECT_EQ(plan.specs[2].site, FaultSite::board_dropout);
  EXPECT_EQ(plan.specs[2].max_fires, 1);
}

TEST(FaultPlan, ParseEmptyIsFaultFree) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
}

TEST(FaultPlan, ParseRejectsUnknownSiteAndBadOptions) {
  EXPECT_THROW(FaultPlan::parse("flux_capacitor"), ConfigError);
  EXPECT_THROW(FaultPlan::parse("shim_build:q=3"), ConfigError);
  EXPECT_THROW(FaultPlan::parse("seed=banana"), ConfigError);
}

TEST(FaultPlan, DescribeRoundTripsThroughParse) {
  const FaultPlan plan = FaultPlan::parse("seed=7,kernel_hang:n=3");
  const FaultPlan again = FaultPlan::parse(plan.describe());
  EXPECT_EQ(again.seed, 7u);
  ASSERT_EQ(again.specs.size(), 1u);
  EXPECT_EQ(again.specs[0].site, FaultSite::kernel_hang);
  EXPECT_EQ(again.specs[0].max_fires, 3);
}

// ------------------------------------------------------------ injector

TEST(FaultInjector, UnplannedSitesNeverFire) {
  FaultInjector fi(FaultPlan::parse("shim_build:n=1"));
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(fi.should_fire(FaultSite::kernel_hang));
  }
  EXPECT_EQ(fi.fires(FaultSite::kernel_hang), 0);
}

TEST(FaultInjector, BudgetBoundsFires) {
  FaultInjector fi(FaultPlan::parse("shim_enqueue:n=3"));
  int fired = 0;
  for (int i = 0; i < 50; ++i) {
    if (fi.should_fire(FaultSite::shim_enqueue)) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(fi.fires(FaultSite::shim_enqueue), 3);
  EXPECT_EQ(fi.total_fires(), 3);
}

TEST(FaultInjector, ProbabilityOneFiresOnFirstOpportunities) {
  FaultInjector fi(FaultPlan::parse("shim_transfer:n=2"));
  EXPECT_TRUE(fi.should_fire(FaultSite::shim_transfer));
  EXPECT_TRUE(fi.should_fire(FaultSite::shim_transfer));
  EXPECT_FALSE(fi.should_fire(FaultSite::shim_transfer));
}

TEST(FaultInjector, DeterministicAcrossInstances) {
  // Which of the k-th opportunities fire is a pure function of
  // (seed, site, k): two injectors built from the same plan agree.
  const FaultPlan plan = FaultPlan::parse("seed=99,seu_bit_flip:p=0.3:n=inf");
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.should_fire(FaultSite::seu_bit_flip),
              b.should_fire(FaultSite::seu_bit_flip));
  }
  EXPECT_EQ(a.fires(FaultSite::seu_bit_flip), b.fires(FaultSite::seu_bit_flip));
  EXPECT_GT(a.fires(FaultSite::seu_bit_flip), 0);
  EXPECT_LT(a.fires(FaultSite::seu_bit_flip), 500);
}

TEST(FaultInjector, SeedChangesFirePattern) {
  FaultInjector a(FaultPlan::parse("seed=1,seu_bit_flip:p=0.5:n=inf"));
  FaultInjector b(FaultPlan::parse("seed=2,seu_bit_flip:p=0.5:n=inf"));
  bool differed = false;
  for (int i = 0; i < 200; ++i) {
    if (a.should_fire(FaultSite::seu_bit_flip) !=
        b.should_fire(FaultSite::seu_bit_flip)) {
      differed = true;
    }
  }
  EXPECT_TRUE(differed);
}

TEST(FaultInjector, PickLaneStaysInRange) {
  FaultInjector fi(FaultPlan::parse("seed=5,seu_bit_flip:n=inf"));
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(fi.pick_lane(16), 16u);
    EXPECT_LT(fi.pick_bit(), 32u);
  }
}

TEST(FaultInjector, StallGateReleasesParkedThread) {
  FaultInjector fi(FaultPlan::parse("kernel_hang:n=1"));
  std::atomic<bool> resumed{false};
  std::thread t([&] {
    fi.stall_until_released();
    resumed.store(true);
  });
  std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(resumed.load());
  fi.release_stalls();
  t.join();
  EXPECT_TRUE(resumed.load());
  // After reset, the gate parks again (released state is per attempt).
  fi.reset_stalls();
  std::thread t2([&] { fi.stall_until_released(); });
  fi.release_stalls();
  t2.join();
}

TEST(FaultInjector, ScopedInstallAndRestore) {
  EXPECT_EQ(active_fault_injector(), nullptr);
  FaultInjector outer(FaultPlan::parse("shim_build:n=1"));
  {
    ScopedFaultInjector scope(outer);
    EXPECT_EQ(active_fault_injector(), &outer);
    FaultInjector inner(FaultPlan::parse("shim_enqueue:n=1"));
    {
      ScopedFaultInjector nested(inner);
      EXPECT_EQ(active_fault_injector(), &inner);
    }
    EXPECT_EQ(active_fault_injector(), &outer);
  }
  EXPECT_EQ(active_fault_injector(), nullptr);
}

TEST(FaultInjector, MaybeInjectTransientThrowsWhileArmed) {
  FaultInjector fi(FaultPlan::parse("shim_transfer:n=1"));
  ScopedFaultInjector scope(fi);
  EXPECT_THROW(maybe_inject_transient(FaultSite::shim_transfer, "DMA"),
               TransientError);
  // Budget exhausted: the same site is clean afterwards.
  EXPECT_NO_THROW(maybe_inject_transient(FaultSite::shim_transfer, "DMA"));
}

TEST(FaultInjector, ReportListsArmedSites) {
  FaultInjector fi(FaultPlan::parse("shim_build:n=2"));
  (void)fi.should_fire(FaultSite::shim_build);
  const std::string report = fi.report();
  EXPECT_NE(report.find("shim_build 1/2"), std::string::npos) << report;
}

// --------------------------------------------------------------- retry

TEST(Retry, SucceedsAfterTransientFailures) {
  int calls = 0;
  std::int64_t retries = 0;
  const int got = retry_transient(
      fast_policy(4),
      [&] {
        if (++calls < 3) throw TransientError("hiccup");
        return 42;
      },
      &retries);
  EXPECT_EQ(got, 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2);
}

TEST(Retry, RethrowsAfterMaxAttempts) {
  int calls = 0;
  EXPECT_THROW(retry_transient(fast_policy(3),
                               [&]() -> int {
                                 ++calls;
                                 throw TransientError("always");
                               }),
               TransientError);
  EXPECT_EQ(calls, 3);
}

TEST(Retry, NonTransientPropagatesImmediately) {
  int calls = 0;
  EXPECT_THROW(retry_transient(fast_policy(5),
                               [&]() -> int {
                                 ++calls;
                                 throw ConfigError("fatal");
                               }),
               ConfigError);
  EXPECT_EQ(calls, 1);  // fatal errors are never retried
}

TEST(Retry, VoidCallableSupported) {
  int calls = 0;
  retry_transient(fast_policy(2), [&] {
    if (++calls < 2) throw TransientError("once");
  });
  EXPECT_EQ(calls, 2);
}

// ------------------------------------------------------------ watchdog

TEST(Watchdog, FiresOnceWithoutKicks) {
  std::atomic<int> fired{0};
  Watchdog dog(std::chrono::milliseconds(10), [&] { ++fired; });
  std::this_thread::sleep_for(100ms);
  EXPECT_TRUE(dog.fired());
  EXPECT_EQ(fired.load(), 1);  // exactly once, even long past the deadline
}

TEST(Watchdog, KicksPushTheDeadlineOut) {
  std::atomic<int> fired{0};
  Watchdog dog(std::chrono::milliseconds(100), [&] { ++fired; });
  for (int i = 0; i < 10; ++i) {
    std::this_thread::sleep_for(5ms);
    dog.kick();
  }
  dog.stop();
  EXPECT_FALSE(dog.fired());
  EXPECT_EQ(fired.load(), 0);
}

TEST(Watchdog, StopDisarmsBeforeDeadline) {
  std::atomic<int> fired{0};
  {
    Watchdog dog(std::chrono::milliseconds(250), [&] { ++fired; });
    dog.stop();
  }
  EXPECT_EQ(fired.load(), 0);
}

// ------------------------------------------------------------ checksum

TEST(Checksum, SensitiveToAnySingleBit) {
  Grid2D<float> g(16, 8);
  g.fill_random(3);
  const std::uint64_t base = grid_checksum(g);
  // Flip one mantissa bit of one cell: the digest must change.
  std::uint32_t bits;
  std::memcpy(&bits, &g.at(5, 3), sizeof(bits));
  bits ^= 1u;
  std::memcpy(&g.at(5, 3), &bits, sizeof(bits));
  EXPECT_NE(grid_checksum(g), base);
}

TEST(Checksum, EqualGridsEqualDigests) {
  Grid3D<float> a(6, 5, 4);
  a.fill_random(11);
  Grid3D<float> b = a;
  EXPECT_EQ(grid_checksum(a), grid_checksum(b));
}

TEST(Checksum, DistinguishesPermutedBytes) {
  const unsigned char x[2] = {1, 2};
  const unsigned char y[2] = {2, 1};
  EXPECT_NE(bytes_checksum(x, 2), bytes_checksum(y, 2));
}

// ---------------------------------------------------------- checkpoint

TEST(Checkpoint, InMemoryRoundTrip) {
  Grid2D<float> g(10, 6);
  g.fill_random(5);
  CheckpointStore<Grid2D<float>> store;
  EXPECT_FALSE(store.has());
  store.save(g, 8);
  EXPECT_TRUE(store.has());
  EXPECT_EQ(store.steps_done(), 8);
  g.fill_random(99);  // diverge
  Grid2D<float> restored(10, 6);
  EXPECT_EQ(store.restore(restored), 8);
  Grid2D<float> expected(10, 6);
  expected.fill_random(5);
  EXPECT_EQ(grid_checksum(restored), grid_checksum(expected));
}

TEST(Checkpoint, FileRoundTrip) {
  Grid3D<float> g(5, 4, 3);
  g.fill_random(13);
  CheckpointStore<Grid3D<float>> store;
  store.save(g, 21);
  const std::string path = ::testing::TempDir() + "fault_ckpt_test.bin";
  store.save_file(path);

  CheckpointStore<Grid3D<float>> loaded;
  loaded.load_file(path);
  EXPECT_TRUE(loaded.has());
  EXPECT_EQ(loaded.steps_done(), 21);
  Grid3D<float> restored(5, 4, 3);
  loaded.restore(restored);
  EXPECT_EQ(grid_checksum(restored), grid_checksum(g));
  std::remove(path.c_str());
}

TEST(Checkpoint, RestoreFromEmptyThrows) {
  CheckpointStore<Grid2D<float>> store;
  Grid2D<float> g(2, 2);
  EXPECT_THROW(store.restore(g), ConfigError);
}

}  // namespace
}  // namespace fpga_stencil
