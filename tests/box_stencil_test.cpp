// Tests for the tap-set generalization: box stencils on the same deep
// pipeline, and star-stencil lowering equivalence.
#include <gtest/gtest.h>

#include "core/stencil_accelerator.hpp"
#include "grid/grid_compare.hpp"
#include "stencil/box_stencil.hpp"
#include "stencil/reference.hpp"

namespace fpga_stencil {
namespace {

TEST(TapSet, Validation) {
  EXPECT_THROW(TapSet(4, 1, {Tap{0, 0, 0, 1.f}}), ConfigError);
  EXPECT_THROW(TapSet(2, 1, {}), ConfigError);
  EXPECT_THROW(TapSet(2, 1, {Tap{2, 0, 0, 1.f}}), ConfigError);  // > radius
  EXPECT_THROW(TapSet(2, 1, {Tap{0, 0, 1, 1.f}}), ConfigError);  // z in 2D
  EXPECT_NO_THROW(TapSet(3, 2, {Tap{1, -2, 2, 1.f}}));
}

TEST(TapSet, FlatOffsetsAndExtent) {
  const TapSet t(3, 1,
                 {Tap{0, 0, 0, 1.f}, Tap{-1, 0, 0, 1.f}, Tap{0, 1, 0, 1.f},
                  Tap{1, 1, 1, 1.f}});
  const std::int64_t bx = 8, plane = 8 * 4;
  EXPECT_EQ(t.flat_offset(t.taps()[1], bx, plane), -1);
  EXPECT_EQ(t.flat_offset(t.taps()[2], bx, plane), 8);
  EXPECT_EQ(t.flat_offset(t.taps()[3], bx, plane), plane + 8 + 1);
  EXPECT_EQ(t.min_flat_offset(bx, plane), -1);
  EXPECT_EQ(t.max_flat_offset(bx, plane), plane + 9);
}

TEST(TapSet, CostModel) {
  const TapSet box = make_box_stencil(3, 1);
  EXPECT_EQ(box.size(), 27u);
  EXPECT_EQ(box.dsps_per_cell(), 27);
  EXPECT_EQ(box.flops_per_cell(), 53);
  // Star lowering preserves the paper's counts.
  const TapSet star = StarStencil::make_benchmark(3, 2).to_taps();
  EXPECT_EQ(star.size(), 13u);  // 1 + 6*2
  EXPECT_EQ(star.flops_per_cell(), 25);  // Table I, 3D radius 2
}

TEST(BoxStencil, TapCountFormula) {
  EXPECT_EQ(box_tap_count(2, 1), 9);
  EXPECT_EQ(box_tap_count(2, 3), 49);
  EXPECT_EQ(box_tap_count(3, 1), 27);
  EXPECT_EQ(box_tap_count(3, 2), 125);
  EXPECT_THROW(box_tap_count(4, 1), ConfigError);
}

TEST(BoxStencil, NormalizedAndDeterministic) {
  for (int dims : {2, 3}) {
    for (int rad : {1, 2}) {
      const TapSet t = make_box_stencil(dims, rad, 5);
      EXPECT_NEAR(t.coefficient_sum(), 1.0, 1e-4);
      EXPECT_EQ(std::int64_t(t.size()), box_tap_count(dims, rad));
    }
  }
  const TapSet a = make_box_stencil(2, 2, 5);
  const TapSet b = make_box_stencil(2, 2, 5);
  EXPECT_EQ(a.taps()[3].coeff, b.taps()[3].coeff);
}

TEST(BoxStencil, Cubic27SharedCoefficients) {
  const TapSet t = make_cubic27_stencil();
  EXPECT_EQ(t.size(), 27u);
  EXPECT_NEAR(t.coefficient_sum(), 1.0, 1e-6);
}

TEST(StarLowering, BitExactWithDirectApply) {
  // apply_taps on to_taps() must equal StarStencil::apply_point exactly.
  for (int dims : {2, 3}) {
    for (int rad : {1, 3}) {
      const StarStencil s = StarStencil::make_benchmark(dims, rad, 21);
      const TapSet taps = s.to_taps();
      if (dims == 2) {
        Grid2D<float> g(17, 11);
        g.fill_random(3);
        for (std::int64_t y = 0; y < 11; ++y) {
          for (std::int64_t x = 0; x < 17; ++x) {
            ASSERT_EQ(apply_taps(taps, g, x, y), s.apply_point(g, x, y));
          }
        }
      } else {
        Grid3D<float> g(9, 8, 7);
        g.fill_random(4);
        for (std::int64_t z = 0; z < 7; ++z) {
          for (std::int64_t y = 0; y < 8; ++y) {
            for (std::int64_t x = 0; x < 9; ++x) {
              ASSERT_EQ(apply_taps(taps, g, x, y, z),
                        s.apply_point(g, x, y, z));
            }
          }
        }
      }
    }
  }
}

TEST(StarLowering, AcceleratorViaTapsBitExactWithStarCtor) {
  const StarStencil s = StarStencil::make_benchmark(2, 2, 8);
  AcceleratorConfig cfg;
  cfg.dims = 2;
  cfg.radius = 2;
  cfg.bsize_x = 48;
  cfg.parvec = 4;
  cfg.partime = 2;
  Grid2D<float> a(90, 30), b(90, 30);
  a.fill_random(6);
  b = a;
  StencilAccelerator via_star(s, cfg);
  StencilAccelerator via_taps(s.to_taps(), cfg);
  via_star.run(a, 5);
  via_taps.run(b, 5);
  EXPECT_TRUE(compare_exact(a, b).identical());
}

TEST(BoxAccelerator, AutoStageLagCoversCorners) {
  // Box corners reach radius*(plane + row + 1): one extra row of lag.
  AcceleratorConfig cfg;
  cfg.dims = 3;
  cfg.radius = 1;
  cfg.bsize_x = 16;
  cfg.bsize_y = 8;
  cfg.parvec = 4;
  cfg.partime = 2;
  StencilAccelerator accel(make_box_stencil(3, 1), cfg);
  EXPECT_EQ(accel.config().effective_stage_lag(), 2);  // rad + 1
  // Star keeps the paper's lag (= radius).
  StencilAccelerator star(StarStencil::make_benchmark(3, 1), cfg);
  EXPECT_EQ(star.config().effective_stage_lag(), 1);
}

class BoxExactness2D
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BoxExactness2D, MatchesReference) {
  const auto [rad, parvec, partime] = GetParam();
  AcceleratorConfig cfg;
  cfg.dims = 2;
  cfg.radius = rad;
  cfg.bsize_x = 48;
  cfg.parvec = parvec;
  cfg.partime = partime;
  if (cfg.csize_x() <= 0) GTEST_SKIP();
  const TapSet box = make_box_stencil(2, rad, 100 + std::uint64_t(rad));
  Grid2D<float> g(77, 21);
  g.fill_random(55);
  Grid2D<float> want = g;
  StencilAccelerator accel(box, cfg);
  accel.run(g, partime + 1);  // includes a partial tail pass
  reference_run(box, want, partime + 1);
  const CompareResult cmp = compare_exact(g, want);
  EXPECT_TRUE(cmp.identical())
      << "rad=" << rad << " pv=" << parvec << " pt=" << partime << ": "
      << cmp.summary();
}

INSTANTIATE_TEST_SUITE_P(Sweep, BoxExactness2D,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 2, 3)));

class BoxExactness3D
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BoxExactness3D, MatchesReference) {
  const auto [rad, partime] = GetParam();
  AcceleratorConfig cfg;
  cfg.dims = 3;
  cfg.radius = rad;
  cfg.bsize_x = 24;
  cfg.bsize_y = 16;
  cfg.parvec = 4;
  cfg.partime = partime;
  if (cfg.csize_x() <= 0 || cfg.csize_y() <= 0) GTEST_SKIP();
  const TapSet box = make_box_stencil(3, rad, 200 + std::uint64_t(rad));
  Grid3D<float> g(30, 22, 9);
  g.fill_random(66);
  Grid3D<float> want = g;
  StencilAccelerator accel(box, cfg);
  accel.run(g, partime + 1);
  reference_run(box, want, partime + 1);
  const CompareResult cmp = compare_exact(g, want);
  EXPECT_TRUE(cmp.identical())
      << "rad=" << rad << " pt=" << partime << ": " << cmp.summary();
}

INSTANTIATE_TEST_SUITE_P(Sweep, BoxExactness3D,
                         ::testing::Combine(::testing::Values(1, 2),
                                            ::testing::Values(1, 2, 3)));

TEST(BoxAccelerator, Cubic27MatchesReference) {
  // The related-work [19] kernel: first-order 27-point cubic stencil.
  AcceleratorConfig cfg;
  cfg.dims = 3;
  cfg.radius = 1;
  cfg.bsize_x = 16;
  cfg.bsize_y = 12;
  cfg.parvec = 4;
  cfg.partime = 3;
  const TapSet cubic = make_cubic27_stencil();
  Grid3D<float> g(25, 19, 8);
  g.fill_random(77);
  Grid3D<float> want = g;
  StencilAccelerator accel(cubic, cfg);
  accel.run(g, 6);
  reference_run(cubic, want, 6);
  EXPECT_TRUE(compare_exact(g, want).identical());
}

TEST(BoxAccelerator, ExplicitStageLagValidated) {
  AcceleratorConfig cfg;
  cfg.dims = 2;
  cfg.radius = 2;
  cfg.bsize_x = 32;
  cfg.parvec = 4;
  cfg.partime = 1;
  cfg.stage_lag = 1;  // too small for a radius-2 box's forward reach
  EXPECT_THROW(StencilAccelerator(make_box_stencil(2, 2), cfg), ConfigError);
  cfg.stage_lag = 3;  // oversized is allowed (just more drain)
  EXPECT_NO_THROW(StencilAccelerator(make_box_stencil(2, 2), cfg));
}

TEST(BoxAccelerator, OversizedExplicitLagStillBitExact) {
  AcceleratorConfig cfg;
  cfg.dims = 2;
  cfg.radius = 1;
  cfg.bsize_x = 32;
  cfg.parvec = 4;
  cfg.partime = 2;
  cfg.stage_lag = 4;  // deliberately larger than needed
  const TapSet box = make_box_stencil(2, 1, 9);
  Grid2D<float> g(50, 17);
  g.fill_random(8);
  Grid2D<float> want = g;
  StencilAccelerator accel(box, cfg);
  accel.run(g, 4);
  reference_run(box, want, 4);
  EXPECT_TRUE(compare_exact(g, want).identical());
}

}  // namespace
}  // namespace fpga_stencil
