// Tests for the YASK-like CPU baseline and the Xeon / Xeon Phi device model.
#include <gtest/gtest.h>

#include "cpu/cpu_device_model.hpp"
#include "cpu/yask_like.hpp"
#include "grid/grid_compare.hpp"
#include "stencil/reference.hpp"

namespace fpga_stencil {
namespace {

TEST(PaddedGrid2D, CopyRoundTrip) {
  Grid2D<float> g(13, 9);
  g.fill_random(3);
  PaddedGrid2D p(13, 9, 2);
  p.copy_from(g);
  Grid2D<float> back(13, 9);
  p.copy_to(back);
  EXPECT_TRUE(compare_exact(g, back).identical());
}

TEST(PaddedGrid2D, HaloReplicatesBordersAndCorners) {
  Grid2D<float> g(4, 3);
  for (std::int64_t y = 0; y < 3; ++y) {
    for (std::int64_t x = 0; x < 4; ++x) g.at(x, y) = float(10 * y + x);
  }
  PaddedGrid2D p(4, 3, 2);
  p.copy_from(g);
  p.refresh_halo();
  const float* o = p.interior();
  const std::int64_t pitch = p.pitch();
  EXPECT_EQ(o[-1], g.at(0, 0));                // west halo
  EXPECT_EQ(o[-2], g.at(0, 0));
  EXPECT_EQ(o[4], g.at(3, 0));                 // east halo
  EXPECT_EQ(o[-pitch], g.at(0, 0));            // south halo
  EXPECT_EQ(o[2 * pitch + 1 + pitch], g.at(1, 2));  // north halo row
  EXPECT_EQ(o[-2 * pitch - 2], g.at(0, 0));    // corner = corner cell
  EXPECT_EQ(o[(2 + 2) * pitch + 3 + 2], g.at(3, 2));  // NE corner
}

TEST(PaddedGrid3D, HaloReplicates) {
  Grid3D<float> g(3, 3, 3);
  g.fill_random(8);
  PaddedGrid3D p(3, 3, 3, 1);
  p.copy_from(g);
  p.refresh_halo();
  const float* o = p.interior();
  const std::int64_t px = p.pitch_x(), py = p.pitch_y();
  EXPECT_EQ(o[-1], g.at(0, 0, 0));
  EXPECT_EQ(o[-px], g.at(0, 0, 0));
  EXPECT_EQ(o[-px * py], g.at(0, 0, 0));
  EXPECT_EQ(o[3], g.at(2, 0, 0));
  EXPECT_EQ(o[2 * px * py + 2 * px + 2 + px * py], g.at(2, 2, 2));
}

TEST(PaddedGrid, RejectsBadShapes) {
  EXPECT_THROW(PaddedGrid2D(0, 3, 1), ConfigError);
  EXPECT_THROW(PaddedGrid3D(3, 3, 3, 0), ConfigError);
  Grid2D<float> g(4, 4);
  PaddedGrid2D p(5, 4, 1);
  EXPECT_THROW(p.copy_from(g), ConfigError);
}

class CpuExactness2D : public ::testing::TestWithParam<int> {};

TEST_P(CpuExactness2D, MatchesReference) {
  const int rad = GetParam();
  const StarStencil s = StarStencil::make_benchmark(2, rad, 31);
  Grid2D<float> g(57, 33);
  g.fill_random(17);
  Grid2D<float> want = g;
  reference_run(s, want, 4);

  YaskLikeStencil2D exec(s);
  const CpuRunResult r = exec.run(g, 4, CpuBlockSize{57, 8, 1});
  // Same accumulation order per cell: bit-exact with the reference.
  EXPECT_TRUE(compare_exact(g, want).identical()) << "rad=" << rad;
  EXPECT_EQ(r.cell_updates, 57 * 33 * 4);
  EXPECT_GT(r.gcells, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Radii, CpuExactness2D, ::testing::Values(1, 2, 3, 4));

class CpuExactness3D : public ::testing::TestWithParam<int> {};

TEST_P(CpuExactness3D, MatchesReference) {
  const int rad = GetParam();
  const StarStencil s = StarStencil::make_benchmark(3, rad, 37);
  Grid3D<float> g(22, 18, 11);
  g.fill_random(19);
  Grid3D<float> want = g;
  reference_run(s, want, 3);

  YaskLikeStencil3D exec(s);
  exec.run(g, 3, CpuBlockSize{22, 6, 4});
  EXPECT_TRUE(compare_exact(g, want).identical()) << "rad=" << rad;
}

INSTANTIATE_TEST_SUITE_P(Radii, CpuExactness3D, ::testing::Values(1, 2, 3, 4));

TEST(CpuBaseline, BlockSizeDoesNotChangeResults) {
  const StarStencil s = StarStencil::make_benchmark(2, 2);
  Grid2D<float> base(40, 28);
  base.fill_random(5);
  Grid2D<float> first = base;
  YaskLikeStencil2D exec(s);
  exec.run(first, 3, CpuBlockSize{40, 4, 1});
  for (std::int64_t by : {1, 7, 16, 28}) {
    Grid2D<float> g = base;
    exec.run(g, 3, CpuBlockSize{40, by, 1});
    EXPECT_TRUE(compare_exact(g, first).identical()) << "by=" << by;
  }
  for (std::int64_t bx : {8, 13, 40}) {
    Grid2D<float> g = base;
    exec.run(g, 3, CpuBlockSize{bx, 8, 1});
    EXPECT_TRUE(compare_exact(g, first).identical()) << "bx=" << bx;
  }
}

TEST(CpuBaseline, AutoTuneReturnsUsableBlock) {
  const StarStencil s = StarStencil::make_benchmark(2, 2);
  YaskLikeStencil2D exec(s);
  const CpuBlockSize b = exec.auto_tune(64, 48);
  EXPECT_GT(b.by, 0);
  EXPECT_LE(b.by, 48);
  const StarStencil s3 = StarStencil::make_benchmark(3, 1);
  YaskLikeStencil3D exec3(s3);
  const CpuBlockSize b3 = exec3.auto_tune(24, 20, 16);
  EXPECT_GT(b3.by, 0);
  EXPECT_GT(b3.bz, 0);
}

TEST(CpuBaseline, DimsMismatchThrows) {
  EXPECT_THROW(YaskLikeStencil2D(StarStencil::make_benchmark(3, 1)),
               ConfigError);
  EXPECT_THROW(YaskLikeStencil3D(StarStencil::make_benchmark(2, 1)),
               ConfigError);
}

// ---- paper-scale Xeon / Xeon Phi model ----

TEST(CpuDeviceModel, GcellsFlatInRadius) {
  // The paper's observation: CPU GCell/s is independent of the radius.
  for (const DeviceSpec& d : {xeon_e5_2650v4(), xeon_phi_7210f()}) {
    for (int dims : {2, 3}) {
      const double g1 = yask_comparison_row(d, dims, 1).gcells;
      for (int rad = 2; rad <= 4; ++rad) {
        EXPECT_DOUBLE_EQ(yask_comparison_row(d, dims, rad).gcells, g1);
      }
    }
  }
}

TEST(CpuDeviceModel, GflopsGrowsLinearly) {
  const DeviceSpec d = xeon_e5_2650v4();
  const ComparisonRow r1 = yask_comparison_row(d, 2, 1);
  const ComparisonRow r4 = yask_comparison_row(d, 2, 4);
  EXPECT_NEAR(r4.gflops / r1.gflops, 33.0 / 9.0, 1e-9);
}

TEST(CpuDeviceModel, MatchesPaperTable4) {
  // Xeon 2D: ~5.0 GCell/s at roofline ratio 0.52, 45-165 GFLOP/s.
  const ComparisonRow r = yask_comparison_row(xeon_e5_2650v4(), 2, 1);
  EXPECT_NEAR(r.gcells, 5.034, 0.07);
  EXPECT_NEAR(r.gflops, 45.306, 0.6);
  EXPECT_NEAR(r.roofline_ratio, 0.52, 1e-9);
  EXPECT_NEAR(r.power_efficiency, 0.521, 0.02);
  // Xeon Phi 2D radius 4: the row that overtakes the FPGA.
  const ComparisonRow p = yask_comparison_row(xeon_phi_7210f(), 2, 4);
  EXPECT_NEAR(p.gflops, 759.198, 30.0);
  EXPECT_NEAR(p.gcells, 23.006, 1.0);
}

TEST(CpuDeviceModel, PowerInMeasuredRange) {
  for (int rad = 1; rad <= 4; ++rad) {
    const double xeon = yask_power_watts(xeon_e5_2650v4(), 2, rad);
    EXPECT_GE(xeon, 85.0);
    EXPECT_LE(xeon, 100.0);
    const double phi = yask_power_watts(xeon_phi_7210f(), 3, rad);
    EXPECT_GE(phi, 222.0);
    EXPECT_LE(phi, 227.0);
  }
}

TEST(CpuDeviceModel, RejectsNonCpuDevices) {
  EXPECT_THROW(yask_sustained_bw_fraction(arria10_gx1150(), 2), ConfigError);
  EXPECT_THROW(yask_comparison_row(gtx_580(), 3, 1), ConfigError);
}

}  // namespace
}  // namespace fpga_stencil
