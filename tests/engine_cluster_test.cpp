// Tests for the sharded serving tier: consistent-hash routing, multi-shard
// bit-exactness, tenant quotas (inflight + rate), QoS plumbing through the
// single submit() path, and drain/reload under load.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine_cluster.hpp"
#include "engine/shard_router.hpp"
#include "grid/grid_compare.hpp"
#include "stencil/box_stencil.hpp"
#include "stencil/reference.hpp"
#include "stencil/star_stencil.hpp"

namespace fpga_stencil {
namespace {

AcceleratorConfig cfg2d(int radius = 1) {
  AcceleratorConfig c;
  c.dims = 2;
  c.radius = radius;
  c.bsize_x = 32;
  c.parvec = 4;
  c.partime = radius <= 2 ? 2 : 1;
  return c;
}

AcceleratorConfig cfg3d(int radius = 1) {
  AcceleratorConfig c;
  c.dims = 3;
  c.radius = radius;
  c.bsize_x = 16;
  c.bsize_y = 8;
  c.parvec = 4;
  c.partime = 1;
  return c;
}

Grid2D<float> grid2d(unsigned seed = 3) {
  Grid2D<float> g(48, 20);
  g.fill_random(seed);
  return g;
}

Grid3D<float> grid3d(unsigned seed = 4) {
  Grid3D<float> g(20, 14, 10);
  g.fill_random(seed);
  return g;
}

/// submit + wait through the one front door (EngineCluster::run is a
/// deprecated one-release shim; see ClusterRunShimStillWorks).
JobResult cluster_run(EngineCluster& cluster, JobSpec spec) {
  JobHandle h = cluster.submit(std::move(spec));
  return std::move(h.wait());
}

/// The deterministic mixed job set every shard-count variant runs: kind
/// selects stencil/config/grid, seed varies the input.
struct JobKind {
  TapSet taps;
  AcceleratorConfig config;
  bool is_3d = false;
};

std::vector<JobKind> make_kinds() {
  std::vector<JobKind> kinds;
  kinds.push_back({StarStencil::make_benchmark(2, 1, 5).to_taps(), cfg2d(1),
                   false});
  kinds.push_back({make_box_stencil(2, 1, 21), cfg2d(1), false});
  kinds.push_back({StarStencil::make_benchmark(2, 2, 9).to_taps(), cfg2d(2),
                   false});
  kinds.push_back({StarStencil::make_benchmark(3, 1, 9).to_taps(), cfg3d(1),
                   true});
  return kinds;
}

JobSpec make_job(const JobKind& kind, unsigned seed, int iters = 2) {
  if (kind.is_3d) return JobSpec(kind.taps, kind.config, grid3d(seed), iters);
  return JobSpec(kind.taps, kind.config, grid2d(seed), iters);
}

TEST(ShardRouter, DrainRemapsOnlyTheDrainedShardsKeys) {
  ShardRouter router(4);
  std::map<std::uint64_t, int> before;
  for (std::uint64_t key = 0; key < 200; ++key) {
    before[key] = router.route(key);
  }
  // Sanity: keys spread over every shard.
  std::set<int> used;
  for (const auto& [key, shard] : before) used.insert(shard);
  EXPECT_EQ(used.size(), 4u);

  router.set_available(2, false);
  for (const auto& [key, shard] : before) {
    const int now = router.route(key);
    if (shard != 2) {
      EXPECT_EQ(now, shard) << "key " << key << " moved needlessly";
    } else {
      EXPECT_NE(now, 2);
    }
  }
  // Restoring the shard restores the original map exactly.
  router.set_available(2, true);
  for (const auto& [key, shard] : before) {
    EXPECT_EQ(router.route(key), shard);
  }
}

TEST(ShardRouter, ThrowsWhenNothingIsAvailable) {
  ShardRouter router(2);
  router.set_available(0, false);
  router.set_available(1, false);
  EXPECT_THROW((void)router.route(7), NoShardAvailableError);
  EXPECT_EQ(router.available_count(), 0);
}

TEST(EngineCluster, BitExactAcrossShardCountsVsSingleEngine) {
  const std::vector<JobKind> kinds = make_kinds();
  constexpr int kJobs = 24;

  // Reference outputs from the naive model, one per (kind, seed).
  std::vector<GridVariant> want;
  for (int i = 0; i < kJobs; ++i) {
    const JobKind& kind = kinds[std::size_t(i) % kinds.size()];
    const unsigned seed = unsigned(i / kinds.size());
    if (kind.is_3d) {
      Grid3D<float> g = grid3d(seed);
      reference_run(kind.taps, g, 2);
      want.emplace_back(std::move(g));
    } else {
      Grid2D<float> g = grid2d(seed);
      reference_run(kind.taps, g, 2);
      want.emplace_back(std::move(g));
    }
  }

  for (const int shards : {1, 2, 4}) {
    EngineCluster cluster({.shards = shards,
                           .engine = {.workers = 2, .queue_capacity = 64}});
    std::vector<JobHandle> handles;
    for (int i = 0; i < kJobs; ++i) {
      const JobKind& kind = kinds[std::size_t(i) % kinds.size()];
      handles.push_back(
          cluster.submit(make_job(kind, unsigned(i / kinds.size()))));
    }
    for (int i = 0; i < kJobs; ++i) {
      JobResult& r = handles[std::size_t(i)].wait();
      if (std::holds_alternative<Grid3D<float>>(want[std::size_t(i)])) {
        EXPECT_TRUE(compare_exact(r.grid3d(),
                                  std::get<Grid3D<float>>(want[std::size_t(i)]))
                        .identical())
            << "shards=" << shards << " job " << i;
      } else {
        EXPECT_TRUE(compare_exact(r.grid2d(),
                                  std::get<Grid2D<float>>(want[std::size_t(i)]))
                        .identical())
            << "shards=" << shards << " job " << i;
      }
    }
    // Every job landed somewhere and nothing failed, across all shards.
    std::int64_t completed = 0;
    for (int k = 0; k < shards; ++k) {
      completed += cluster.shard(k).stats().jobs_completed;
      EXPECT_EQ(cluster.shard(k).stats().jobs_failed, 0);
    }
    EXPECT_EQ(completed, kJobs);
  }
}

TEST(EngineCluster, FingerprintAffinityPinsAKindToOneShard) {
  const std::vector<JobKind> kinds = make_kinds();
  EngineCluster cluster({.shards = 4, .engine = {.workers = 1}});
  for (const JobKind& kind : kinds) {
    // Same kind, different seeds/iterations: one shard owns them all
    // (the route key is plan identity, not grid contents).
    const int shard = cluster.route_shard(make_job(kind, 1));
    EXPECT_EQ(cluster.route_shard(make_job(kind, 2, 3)), shard);
    EXPECT_EQ(cluster.route_shard(make_job(kind, 9, 1)), shard);
  }
}

TEST(EngineCluster, InflightCapRejectsThenRecovers) {
  EngineCluster cluster(
      {.shards = 1,
       .engine = {.workers = 1, .start_paused = true},
       .quotas = {{"alice", TenantQuota{.max_inflight = 2}}}});
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();

  auto make = [&] {
    JobSpec s(taps, cfg2d(), grid2d(), 2);
    s.tenant = "alice";
    return s;
  };
  JobHandle a = cluster.submit(make());
  JobHandle b = cluster.submit(make());
  EXPECT_EQ(cluster.tenant_inflight("alice"), 2);
  try {
    (void)cluster.submit(make());
    FAIL() << "third submission should exceed the inflight cap";
  } catch (const QuotaExceededError& e) {
    // Inflight caps free on job completion, not on a clock.
    EXPECT_EQ(e.retry_after(), std::chrono::nanoseconds(0));
    EXPECT_NE(std::string(e.what()).find("alice"), std::string::npos);
  }
  // A different tenant is not affected by alice's cap.
  JobSpec other(taps, cfg2d(), grid2d(), 2);
  other.tenant = "bob";
  JobHandle c = cluster.submit(std::move(other));

  cluster.shard(0).resume();
  (void)a.wait();
  (void)b.wait();
  (void)c.wait();
  // Quota released via the terminal hook: alice can submit again.
  cluster.wait_idle();
  EXPECT_EQ(cluster.tenant_inflight("alice"), 0);
  JobHandle d = cluster.submit(make());
  EXPECT_NO_THROW((void)d.wait());
}

TEST(EngineCluster, RateLimitRejectsWithRetryAfterHint) {
  EngineCluster cluster(
      {.shards = 1,
       .engine = {.workers = 1},
       .quotas = {{"gamma",
                   TenantQuota{.rate_per_s = 0.5, .burst = 2.0}}}});
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  auto make = [&] {
    JobSpec s(taps, cfg2d(), grid2d(), 1);
    s.tenant = "gamma";
    return s;
  };
  // The burst admits two; the third is over the sustained rate.
  (void)cluster_run(cluster, make());
  (void)cluster_run(cluster, make());
  try {
    (void)cluster.submit(make());
    FAIL() << "third submission should exceed the rate limit";
  } catch (const QuotaExceededError& e) {
    EXPECT_GT(e.retry_after(), std::chrono::nanoseconds(0));
    EXPECT_LE(e.retry_after(), std::chrono::seconds(3));
  }
  // The rejection did not leak an inflight slot.
  EXPECT_EQ(cluster.tenant_inflight("gamma"), 0);
}

TEST(EngineCluster, BlockingTenantSerializesInsteadOfRejecting) {
  EngineCluster cluster(
      {.shards = 1,
       .engine = {.workers = 1},
       .quotas = {{"steady",
                   TenantQuota{.max_inflight = 1, .block = true}}}});
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  std::vector<JobHandle> handles;
  for (int i = 0; i < 4; ++i) {
    JobSpec s(taps, cfg2d(), grid2d(), 2);
    s.tenant = "steady";
    // Each submit blocks until the previous job frees the slot; no
    // QuotaExceededError is ever thrown for a blocking tenant.
    handles.push_back(cluster.submit(std::move(s)));
  }
  for (JobHandle& h : handles) EXPECT_NO_THROW((void)h.wait());
  cluster.wait_idle();
  EXPECT_EQ(cluster.tenant_inflight("steady"), 0);
}

TEST(EngineCluster, DrainOneShardUnderLoadLosesNothing) {
  const std::vector<JobKind> kinds = make_kinds();
  EngineCluster cluster({.shards = 3,
                         .engine = {.workers = 2, .queue_capacity = 128}});
  constexpr int kThreads = 3;
  constexpr int kJobsPerThread = 20;
  std::vector<std::vector<JobHandle>> handles(kThreads);
  std::atomic<int> submitted{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kJobsPerThread; ++i) {
        const JobKind& kind = kinds[std::size_t(t + i) % kinds.size()];
        handles[std::size_t(t)].push_back(
            cluster.submit(make_job(kind, unsigned(i))));
        ++submitted;
      }
    });
  }
  // Mid-load: pull shard 1 out, drain it, put a fresh engine back.
  while (submitted.load() < kThreads * kJobsPerThread / 3) {
    std::this_thread::yield();
  }
  cluster.drain_shard(1);
  EXPECT_FALSE(cluster.router().available(1));
  cluster.reload_shard(1);
  EXPECT_TRUE(cluster.router().available(1));
  for (std::thread& t : submitters) t.join();

  // Zero lost, zero duplicated: every handle resolves exactly once and
  // the cross-shard completion total matches the submission count.
  int resolved = 0;
  for (auto& per_thread : handles) {
    for (JobHandle& h : per_thread) {
      EXPECT_NO_THROW((void)h.wait());
      ++resolved;
    }
  }
  EXPECT_EQ(resolved, kThreads * kJobsPerThread);
  cluster.wait_idle();
  const MetricsSnapshot snap = cluster.telemetry().metrics().snapshot();
  std::int64_t completed = 0;
  for (int k = 0; k < 3; ++k) {
    // Snapshot totals accumulate across the reload (same shard prefix
    // before and after), unlike the fresh engine's stats().
    completed += snap.value_or("engine.shard" + std::to_string(k) +
                                   ".jobs_completed",
                               0);
  }
  EXPECT_EQ(completed, kThreads * kJobsPerThread);
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(cluster.shard(k).buffer_pool().outstanding(), 0);
  }
}

TEST(EngineCluster, ClusterRunShimStillWorks) {
  // run() is [[deprecated]] for one release (submit + JobHandle::wait is
  // the front door); keep the shim exercised until it is removed.
  EngineCluster cluster({.shards = 1, .engine = {.workers = 1}});
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  Grid2D<float> want = grid2d();
  reference_run(taps, want, 2);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  JobResult r = cluster.run(JobSpec(taps, cfg2d(), grid2d(), 2));
#pragma GCC diagnostic pop
  EXPECT_TRUE(compare_exact(r.grid2d(), want).identical());
}

TEST(EngineCluster, DrainedClusterRejectsNewSubmissions) {
  EngineCluster cluster({.shards = 2, .engine = {.workers = 1}});
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  (void)cluster_run(cluster, JobSpec(taps, cfg2d(), grid2d(), 2));
  cluster.drain();
  EXPECT_THROW((void)cluster.submit(JobSpec(taps, cfg2d(), grid2d(), 2)),
               EngineStoppedError);
}

TEST(EngineCluster, QosAndTenantRideTheSingleSubmitPath) {
  EngineCluster cluster({.shards = 1, .engine = {.workers = 1}});
  const TapSet taps = StarStencil::make_benchmark(2, 1, 5).to_taps();
  JobSpec spec(taps, cfg2d(), grid2d(), 2);
  spec.tenant = "alice";
  spec.qos = QosClass::interactive;
  spec.label = "front-door";
  JobResult r = cluster_run(cluster, std::move(spec));
  EXPECT_EQ(r.tenant, "alice");
  EXPECT_EQ(r.qos, QosClass::interactive);
  EXPECT_EQ(r.label, "front-door");
  const MetricsSnapshot snap = cluster.telemetry().metrics().snapshot();
  EXPECT_EQ(snap.value_or("cluster.jobs_submitted", -1), 1);
  EXPECT_EQ(snap.value_or("cluster.tenant.alice.submitted", -1), 1);
  EXPECT_EQ(snap.value_or("cluster.tenant.alice.done", -1), 1);
}

}  // namespace
}  // namespace fpga_stencil
