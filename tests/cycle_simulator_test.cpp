// Tests for the cycle-level timing simulator: convergence, zero-stall
// behaviour when bandwidth is ample, and the wide-access splitting
// mechanism behind the paper's 3D pipeline-efficiency loss.
#include <gtest/gtest.h>

#include "model/cycle_simulator.hpp"
#include "model/performance_model.hpp"

namespace fpga_stencil {
namespace {

const DeviceSpec kArria = arria10_gx1150();

CycleSimConfig make_sim(int dims, int rad, std::int64_t bx, std::int64_t by,
                        int pv, int pt, double fmax,
                        std::int64_t block_x0 = 0) {
  CycleSimConfig sim;
  sim.accel.dims = dims;
  sim.accel.radius = rad;
  sim.accel.bsize_x = bx;
  sim.accel.bsize_y = by;
  sim.accel.parvec = pv;
  sim.accel.partime = pt;
  sim.nx = 4 * bx;
  sim.stream_extent = dims == 2 ? 256 : 64;
  sim.fmax_mhz = fmax;
  sim.block_x0 = block_x0;
  return sim;
}

TEST(CycleSimulator, ConvergesAndCountsCycles) {
  const CycleSimConfig sim = make_sim(2, 1, 64, 1, 4, 2, 300.0);
  const CycleStats st = simulate_block_pass(sim, kArria);
  EXPECT_EQ(st.ideal_cycles, 256 * 64 / 4);
  EXPECT_GE(st.kernel_cycles, st.ideal_cycles);
  EXPECT_GT(st.total_bursts, 0);
  EXPECT_GT(st.efficiency(), 0.0);
  EXPECT_LE(st.efficiency(), 1.0);
}

TEST(CycleSimulator, NarrowAccessesNearZeroStall) {
  // 16-byte accesses at 300 MHz demand ~9.6 GB/s of 34.1 available: the
  // pipeline runs essentially stall-free once the fill/drain overhead is
  // amortized over a long stream.
  CycleSimConfig sim = make_sim(2, 2, 256, 1, 4, 4, 300.0);
  sim.stream_extent = 4096;
  const CycleStats st = simulate_block_pass(sim, kArria);
  EXPECT_GT(st.efficiency(), 0.95);
}

TEST(CycleSimulator, WideUnalignedAccessesStall) {
  // 64-byte accesses from a non-burst-aligned block origin split into two
  // bursts: read+write demand exceeds what the controller can serve and
  // the chain starves, reproducing the paper's 3D loss.
  const CycleSimConfig aligned = make_sim(3, 2, 64, 32, 16, 2, 280.0,
                                          /*block_x0=*/0);
  const CycleSimConfig unaligned = make_sim(3, 2, 64, 32, 16, 2, 280.0,
                                            /*block_x0=*/4);
  const CycleStats a = simulate_block_pass(aligned, kArria);
  const CycleStats u = simulate_block_pass(unaligned, kArria);
  EXPECT_EQ(a.split_accesses, 0);
  EXPECT_GT(u.split_accesses, 0);
  EXPECT_GT(a.efficiency(), u.efficiency());
  EXPECT_LT(u.efficiency(), 0.75);
  EXPECT_GT(u.read_stall_cycles, 0);
}

TEST(CycleSimulator, SplitCountMatchesAddressArithmetic) {
  // With a 4-cell (16 B) offset, every 64 B access crosses one boundary.
  const CycleSimConfig sim = make_sim(3, 1, 64, 16, 16, 1, 280.0,
                                      /*block_x0=*/4);
  const CycleStats st = simulate_block_pass(sim, kArria);
  const std::int64_t reads = sim.stream_extent * 64 * 16 / 16;
  EXPECT_GE(st.split_accesses, reads);  // every read splits (plus writes)
}

TEST(CycleSimulator, EfficiencyTracksAnalyticModel) {
  // The from-first-principles simulation lands in the same regime as the
  // calibrated layer-2 model. The simulated case is worst-case alignment
  // (every access splits), so it sits below the calibrated average; allow
  // a wide band but demand the same bandwidth-starved regime.
  const CycleSimConfig sim = make_sim(3, 2, 64, 32, 16, 2, 280.0,
                                      /*block_x0=*/4);
  const CycleStats st = simulate_block_pass(sim, kArria);
  const double analytic =
      pipeline_efficiency(sim.accel, kArria, sim.fmax_mhz) /
      (sim.accel.dims == 2 ? 0.86 : 0.88);  // strip the base factor
  EXPECT_NEAR(st.efficiency(), analytic, 0.25);
  EXPECT_LT(st.efficiency(), 0.9);  // clearly stalled, like the model
}

TEST(CycleSimulator, LowerFmaxReducesStalls) {
  // A slower kernel demands less bandwidth per cycle: fewer stalls.
  const CycleSimConfig fast = make_sim(3, 2, 64, 32, 16, 2, 280.0, 4);
  const CycleSimConfig slow = make_sim(3, 2, 64, 32, 16, 2, 140.0, 4);
  const CycleStats f = simulate_block_pass(fast, kArria);
  const CycleStats s = simulate_block_pass(slow, kArria);
  EXPECT_GT(s.efficiency(), f.efficiency());
}

TEST(CycleSimulator, SeparateBanksBeatSharedBusWhenTurnaroundDominates) {
  // Two DDR banks (the Nallatech 385A configuration): each stream gets its
  // own controller, so the shared-bus read<->write turnaround disappears.
  // With balanced narrow streams where turnaround is the dominant cost,
  // banking wins; with a read-heavy split-access stream, halving the read
  // bank's rate can hurt instead -- both behaviours are modeled.
  CycleSimConfig shared = make_sim(2, 2, 256, 1, 4, 4, 300.0, 0);
  shared.separate_rw_banks = false;
  shared.turnaround_cost = 1.0;  // worst-case bus turnaround
  CycleSimConfig banked = shared;
  banked.separate_rw_banks = true;
  const CycleStats s = simulate_block_pass(shared, kArria);
  const CycleStats b = simulate_block_pass(banked, kArria);
  EXPECT_GT(b.efficiency(), s.efficiency());

  // Read-heavy wide-access traffic: the shared bus can come out ahead.
  CycleSimConfig shared_wide = make_sim(3, 2, 64, 32, 16, 2, 280.0, 4);
  shared_wide.turnaround_cost = 0.5;
  CycleSimConfig banked_wide = shared_wide;
  banked_wide.separate_rw_banks = true;
  EXPECT_GT(simulate_block_pass(shared_wide, kArria).efficiency(),
            simulate_block_pass(banked_wide, kArria).efficiency());
}

TEST(CycleSimulator, TurnaroundCostMonotone) {
  CycleSimConfig sim = make_sim(3, 2, 64, 32, 16, 2, 280.0, 4);
  sim.turnaround_cost = 0.0;
  const double none = simulate_block_pass(sim, kArria).efficiency();
  sim.turnaround_cost = 1.0;
  const double heavy = simulate_block_pass(sim, kArria).efficiency();
  EXPECT_GT(none, heavy);
}

TEST(CycleSimulator, BankedModeUnaffectedByTurnaroundCost) {
  CycleSimConfig sim = make_sim(3, 2, 64, 32, 16, 2, 280.0, 4);
  sim.separate_rw_banks = true;
  sim.turnaround_cost = 0.0;
  const std::int64_t a = simulate_block_pass(sim, kArria).kernel_cycles;
  sim.turnaround_cost = 2.0;
  const std::int64_t b = simulate_block_pass(sim, kArria).kernel_cycles;
  EXPECT_EQ(a, b);
}

TEST(CycleSimulator, InvalidInputsThrow) {
  CycleSimConfig sim = make_sim(2, 1, 64, 1, 4, 1, 300.0);
  sim.fmax_mhz = 0;
  EXPECT_THROW(simulate_block_pass(sim, kArria), ConfigError);
  sim = make_sim(2, 1, 64, 1, 4, 1, 300.0);
  sim.stream_extent = 0;
  EXPECT_THROW(simulate_block_pass(sim, kArria), ConfigError);
  sim = make_sim(2, 1, 64, 1, 4, 1, 300.0);
  EXPECT_THROW(simulate_block_pass(sim, xeon_e5_2650v4()), ConfigError);
}

}  // namespace
}  // namespace fpga_stencil
