// The core validation of the reproduction: the FPGA architecture simulator
// (read kernel -> PE chain -> write kernel, with overlapped spatial blocking
// and temporal blocking) must be *bit-exact* against the naive reference for
// any configuration, grid shape, and iteration count.
#include <gtest/gtest.h>

#include "core/stencil_accelerator.hpp"
#include "grid/grid_compare.hpp"
#include "stencil/reference.hpp"

namespace fpga_stencil {
namespace {

AcceleratorConfig cfg2d(int rad, std::int64_t bx, int pv, int pt) {
  AcceleratorConfig c;
  c.dims = 2;
  c.radius = rad;
  c.bsize_x = bx;
  c.parvec = pv;
  c.partime = pt;
  return c;
}

AcceleratorConfig cfg3d(int rad, std::int64_t bx, std::int64_t by, int pv,
                        int pt) {
  AcceleratorConfig c;
  c.dims = 3;
  c.radius = rad;
  c.bsize_x = bx;
  c.bsize_y = by;
  c.parvec = pv;
  c.partime = pt;
  return c;
}

void expect_bit_exact_2d(const AcceleratorConfig& cfg, std::int64_t nx,
                         std::int64_t ny, int iterations,
                         std::uint64_t seed = 1234) {
  const StarStencil s = StarStencil::make_benchmark(2, cfg.radius, seed);
  Grid2D<float> grid(nx, ny);
  grid.fill_random(seed * 7 + 1);
  Grid2D<float> ref = grid;

  StencilAccelerator accel(s, cfg);
  const RunStats stats = accel.run(grid, iterations);
  reference_run(s, ref, iterations);

  const CompareResult cmp = compare_exact(grid, ref);
  EXPECT_TRUE(cmp.identical())
      << cfg.describe() << " grid " << nx << "x" << ny << " iters "
      << iterations << ": " << cmp.summary();
  EXPECT_EQ(stats.time_steps, iterations);
  EXPECT_EQ(stats.cells_written, nx * ny * std::int64_t(stats.passes));
}

void expect_bit_exact_3d(const AcceleratorConfig& cfg, std::int64_t nx,
                         std::int64_t ny, std::int64_t nz, int iterations,
                         std::uint64_t seed = 4321) {
  const StarStencil s = StarStencil::make_benchmark(3, cfg.radius, seed);
  Grid3D<float> grid(nx, ny, nz);
  grid.fill_random(seed * 3 + 1);
  Grid3D<float> ref = grid;

  StencilAccelerator accel(s, cfg);
  const RunStats stats = accel.run(grid, iterations);
  reference_run(s, ref, iterations);

  const CompareResult cmp = compare_exact(grid, ref);
  EXPECT_TRUE(cmp.identical())
      << cfg.describe() << " grid " << nx << "x" << ny << "x" << nz
      << " iters " << iterations << ": " << cmp.summary();
  EXPECT_EQ(stats.cells_written, nx * ny * nz * std::int64_t(stats.passes));
}

TEST(Accelerator, RejectsMismatchedDims) {
  const StarStencil s2 = StarStencil::make_benchmark(2, 1);
  EXPECT_THROW(StencilAccelerator(s2, cfg3d(1, 16, 8, 2, 1)), ConfigError);
  StencilAccelerator acc(s2, cfg2d(1, 16, 2, 1));
  Grid3D<float> g3(8, 8, 8);
  EXPECT_THROW(acc.run(g3, 1), ConfigError);
}

TEST(Accelerator, ZeroIterationsIsNoop) {
  const StarStencil s = StarStencil::make_benchmark(2, 1);
  StencilAccelerator acc(s, cfg2d(1, 16, 2, 1));
  Grid2D<float> g(10, 10);
  g.fill_random(5);
  Grid2D<float> before = g;
  const RunStats stats = acc.run(g, 0);
  EXPECT_TRUE(compare_exact(g, before).identical());
  EXPECT_EQ(stats.passes, 0);
  EXPECT_EQ(stats.cells_streamed, 0);
}

// ---- 2D parameterized sweep: (radius, parvec, partime) ----

class Exactness2D
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Exactness2D, MultiBlockMultiPass) {
  const auto [rad, parvec, partime] = GetParam();
  const AcceleratorConfig cfg = cfg2d(rad, 48, parvec, partime);
  if (cfg.csize_x() <= 0) GTEST_SKIP() << "halo exceeds block";
  // Grid wider than one block, height not a multiple of anything special,
  // iterations chosen to include a partial tail pass.
  expect_bit_exact_2d(cfg, 115, 23, 2 * partime + 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Exactness2D,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                                            ::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(1, 2, 3, 4)));

// ---- 3D parameterized sweep ----

class Exactness3D
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Exactness3D, MultiBlockMultiPass) {
  const auto [rad, parvec, partime] = GetParam();
  const AcceleratorConfig cfg = cfg3d(rad, 24, 20, parvec, partime);
  if (cfg.csize_x() <= 0 || cfg.csize_y() <= 0) GTEST_SKIP();
  expect_bit_exact_3d(cfg, 37, 25, 14, partime + 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Exactness3D,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 2, 3)));

// ---- edge-case grids ----

TEST(Accelerator, TinyGridSmallerThanEverything2D) {
  // Grid smaller than the radius in y and barely wider than it in x.
  expect_bit_exact_2d(cfg2d(3, 32, 2, 2), 5, 2, 3);
  expect_bit_exact_2d(cfg2d(4, 32, 2, 1), 2, 1, 2);
}

TEST(Accelerator, TinyGrid3D) {
  expect_bit_exact_3d(cfg3d(2, 16, 12, 2, 1), 3, 2, 2, 2);
  expect_bit_exact_3d(cfg3d(3, 32, 16, 2, 1), 4, 3, 1, 1);
}

TEST(Accelerator, GridExactlyOneBlock2D) {
  const AcceleratorConfig cfg = cfg2d(2, 64, 4, 2);  // csize 56
  expect_bit_exact_2d(cfg, 56, 33, 4);
}

TEST(Accelerator, GridExactMultipleOfCsize2D) {
  const AcceleratorConfig cfg = cfg2d(1, 32, 4, 2);  // csize 28
  expect_bit_exact_2d(cfg, 28 * 3, 17, 5);
}

TEST(Accelerator, GridOneCellOverBlockBoundary) {
  const AcceleratorConfig cfg = cfg2d(1, 32, 4, 2);  // csize 28
  expect_bit_exact_2d(cfg, 28 * 2 + 1, 9, 2);
}

TEST(Accelerator, NonSquare3DBlocks) {
  // The paper added non-square block support for high-order 3D tuning.
  expect_bit_exact_3d(cfg3d(2, 32, 16, 4, 2), 40, 30, 9, 4);
  expect_bit_exact_3d(cfg3d(2, 16, 32, 4, 2), 40, 30, 9, 4);
}

TEST(Accelerator, HighRadiusSingleStage) {
  expect_bit_exact_2d(cfg2d(8, 64, 4, 1), 60, 21, 2);
}

TEST(Accelerator, IterationsNotMultipleOfPartime) {
  // Tail passes run with trailing PEs in pass-through mode; every residue
  // class of iterations mod partime must be exact.
  const AcceleratorConfig cfg = cfg2d(1, 32, 4, 4);
  for (int iters = 1; iters <= 9; ++iters) {
    expect_bit_exact_2d(cfg, 50, 13, iters, 100 + std::uint64_t(iters));
  }
}

TEST(Accelerator, ConstantFieldPreserved) {
  const StarStencil s = StarStencil::make_benchmark(3, 2);
  StencilAccelerator acc(s, cfg3d(2, 16, 12, 4, 2));
  Grid3D<float> g(20, 18, 7, 3.0f);
  acc.run(g, 4);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_NEAR(g.data()[i], 3.0f, 2e-4f);
  }
}

// ---- statistics / accounting ----

TEST(Accelerator, StatsMatchBlockingPlan) {
  const AcceleratorConfig cfg = cfg2d(2, 64, 4, 3);
  const std::int64_t nx = 130, ny = 40;
  const StarStencil s = StarStencil::make_benchmark(2, 2);
  StencilAccelerator acc(s, cfg);
  Grid2D<float> g(nx, ny);
  g.fill_random(9);
  const RunStats stats = acc.run(g, 6);  // exactly two passes

  const BlockingPlan plan = make_blocking_plan(cfg, nx, ny);
  EXPECT_EQ(stats.passes, 2);
  EXPECT_EQ(stats.cells_streamed, 2 * plan.cells_streamed);
  EXPECT_EQ(stats.vectors_processed, 2 * plan.vectors_streamed);
  EXPECT_EQ(stats.block_passes, 2 * plan.blocks_x);
  EXPECT_DOUBLE_EQ(stats.redundancy(),
                   double(2 * plan.cells_streamed) / double(2 * nx * ny));
}

TEST(Accelerator, StatsMatchBlockingPlan3D) {
  const AcceleratorConfig cfg = cfg3d(1, 24, 16, 4, 2);
  const StarStencil s = StarStencil::make_benchmark(3, 1);
  StencilAccelerator acc(s, cfg);
  Grid3D<float> g(50, 30, 11);
  g.fill_random(10);
  const RunStats stats = acc.run(g, 2);
  const BlockingPlan plan = make_blocking_plan(cfg, 50, 30, 11);
  EXPECT_EQ(stats.vectors_processed, plan.vectors_streamed);
  EXPECT_EQ(stats.block_passes, plan.blocks_x * plan.blocks_y);
}

TEST(Accelerator, LinearityOfTheOperator) {
  // A stencil step is a linear operator; the accelerator must satisfy
  // superposition up to float rounding: A(x + y) ~= A(x) + A(y), and be
  // exactly homogeneous for a power-of-two scale (exact in binary FP).
  const StarStencil s = StarStencil::make_benchmark(2, 2, 3);
  const AcceleratorConfig cfg = cfg2d(2, 32, 4, 2);
  const std::int64_t nx = 50, ny = 20;
  Grid2D<float> x(nx, ny), y(nx, ny), xy(nx, ny);
  x.fill_random(1, 0.0f, 0.5f);
  y.fill_random(2, 0.0f, 0.5f);
  for (std::int64_t i = 0; i < std::int64_t(x.size()); ++i) {
    xy.data()[i] = x.data()[i] + y.data()[i];
  }
  StencilAccelerator accel(s, cfg);
  accel.run(x, 2);
  accel.run(y, 2);
  accel.run(xy, 2);
  for (std::int64_t i = 0; i < std::int64_t(x.size()); ++i) {
    EXPECT_NEAR(xy.data()[i], x.data()[i] + y.data()[i], 2e-5f);
  }

  // Homogeneity with a power-of-two factor is bit-exact.
  Grid2D<float> a(nx, ny), a4(nx, ny);
  a.fill_random(7, 0.0f, 0.5f);
  for (std::int64_t i = 0; i < std::int64_t(a.size()); ++i) {
    a4.data()[i] = 4.0f * a.data()[i];
  }
  accel.run(a, 3);
  accel.run(a4, 3);
  for (std::int64_t i = 0; i < std::int64_t(a.size()); ++i) {
    ASSERT_EQ(a4.data()[i], 4.0f * a.data()[i]);
  }
}

TEST(Accelerator, TranslationEquivariantInInterior) {
  // Shifting the input shifts the output, away from the clamped borders.
  const StarStencil s = StarStencil::make_benchmark(2, 1, 5);
  const AcceleratorConfig cfg = cfg2d(1, 32, 4, 1);
  const std::int64_t n = 40;
  Grid2D<float> a(n, n, 0.0f), b(n, n, 0.0f);
  SplitMix64 rng(3);
  for (std::int64_t y = 10; y < 20; ++y) {
    for (std::int64_t x = 10; x < 20; ++x) {
      const float v = rng.next_float(0.0f, 1.0f);
      a.at(x, y) = v;
      b.at(x + 5, y + 7) = v;
    }
  }
  StencilAccelerator accel(s, cfg);
  accel.run(a, 3);
  accel.run(b, 3);
  for (std::int64_t y = 5; y < 25; ++y) {
    for (std::int64_t x = 5; x < 25; ++x) {
      ASSERT_EQ(a.at(x, y), b.at(x + 5, y + 7)) << x << "," << y;
    }
  }
}

TEST(Accelerator, PaperConfigsScaledDown) {
  // The paper's Table III configurations, scaled to laptop-size grids:
  // same parvec/partime ratios, same block aspect, reduced bsize.
  expect_bit_exact_2d(cfg2d(1, 256, 8, 6), 500, 40, 7);
  expect_bit_exact_2d(cfg2d(2, 256, 4, 7), 500, 40, 8);
  expect_bit_exact_3d(cfg3d(1, 32, 32, 8, 3), 60, 60, 12, 4);
  expect_bit_exact_3d(cfg3d(2, 32, 16, 8, 2), 60, 44, 12, 3);
  expect_bit_exact_3d(cfg3d(4, 64, 32, 8, 2), 70, 40, 10, 3);
}

}  // namespace
}  // namespace fpga_stencil
