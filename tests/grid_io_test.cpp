// Tests for grid serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "grid/grid_compare.hpp"
#include "grid/grid_io.hpp"

namespace fpga_stencil {
namespace {

TEST(GridIo, PgmHeaderAndRange) {
  Grid2D<float> g(3, 2);
  g.at(0, 0) = 0.0f;
  g.at(1, 0) = 0.5f;
  g.at(2, 0) = 1.0f;
  g.at(0, 1) = -5.0f;  // clamps to 0
  g.at(1, 1) = 5.0f;   // clamps to 255
  g.at(2, 1) = 0.25f;
  std::ostringstream os;
  write_pgm(g, os, 0.0f, 1.0f);
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("P2\n3 2\n255\n", 0), 0u);
  EXPECT_NE(out.find("0 128 255"), std::string::npos);
  EXPECT_NE(out.find("0 255 64"), std::string::npos);
}

TEST(GridIo, PgmRejectsEmptyRange) {
  Grid2D<float> g(2, 2);
  std::ostringstream os;
  EXPECT_THROW(write_pgm(g, os, 1.0f, 1.0f), ConfigError);
}

TEST(GridIo, PgmSlice) {
  Grid3D<float> g(2, 2, 3, 0.0f);
  g.at(0, 0, 1) = 1.0f;
  std::ostringstream os;
  write_pgm_slice(g, 1, os, 0.0f, 1.0f);
  EXPECT_EQ(os.str().rfind("P2\n2 2\n255\n255 0\n", 0), 0u);
  std::ostringstream os2;
  EXPECT_THROW(write_pgm_slice(g, 3, os2, 0.0f, 1.0f), ConfigError);
}

TEST(GridIo, CsvShape) {
  Grid2D<float> g(3, 2);
  g.fill_random(1);
  std::ostringstream os;
  write_csv(g, os);
  const std::string out = os.str();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
  EXPECT_EQ(std::count(out.begin(), out.end(), ','), 4);
}

TEST(GridIo, BinaryRoundTrip2D) {
  Grid2D<float> g(37, 11);
  g.fill_random(99);
  std::stringstream ss;
  write_binary(g, ss);
  const Grid2D<float> back = read_binary_2d(ss);
  EXPECT_TRUE(compare_exact(g, back).identical());
}

TEST(GridIo, BinaryRoundTrip3D) {
  Grid3D<float> g(9, 8, 7);
  g.fill_random(5);
  std::stringstream ss;
  write_binary(g, ss);
  const Grid3D<float> back = read_binary_3d(ss);
  EXPECT_TRUE(compare_exact(g, back).identical());
}

TEST(GridIo, BinaryRejectsWrongMagic) {
  Grid2D<float> g(4, 4);
  std::stringstream ss;
  write_binary(g, ss);
  EXPECT_THROW(read_binary_3d(ss), ConfigError);  // 2D snapshot, 3D reader
  std::stringstream junk("not a snapshot at all");
  EXPECT_THROW(read_binary_2d(junk), ConfigError);
}

TEST(GridIo, BinaryRejectsTruncation) {
  Grid3D<float> g(6, 5, 4);
  g.fill_random(2);
  std::stringstream ss;
  write_binary(g, ss);
  std::string bytes = ss.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream cut(bytes);
  EXPECT_THROW(read_binary_3d(cut), ConfigError);
}

}  // namespace
}  // namespace fpga_stencil
