// Tests for the in-plane GPU dataset and bandwidth-ratio extrapolation.
#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "gpu/inplane_gpu.hpp"

namespace fpga_stencil {
namespace {

TEST(GpuModel, DatasetValues) {
  EXPECT_DOUBLE_EQ(gtx580_inplane_gcells(1), 17.294);
  EXPECT_DOUBLE_EQ(gtx580_inplane_gcells(4), 9.254);
  EXPECT_THROW(gtx580_inplane_gcells(0), ConfigError);
  EXPECT_THROW(gtx580_inplane_gcells(5), ConfigError);
}

TEST(GpuModel, MeasuredRowMatchesTable5) {
  const ComparisonRow r = gpu_measured_row(1);
  EXPECT_DOUBLE_EQ(r.gcells, 17.294);
  EXPECT_NEAR(r.gflops, 224.822, 1e-9);  // 17.294 * 13
  EXPECT_NEAR(r.power_watts, 183.0, 1e-9);  // 75% of 244 W
  EXPECT_NEAR(r.power_efficiency, 1.229, 0.005);
  EXPECT_NEAR(r.roofline_ratio, 0.72, 0.005);
  EXPECT_FALSE(r.extrapolated);
}

TEST(GpuModel, ExtrapolationByBandwidthRatio) {
  // GTX 980 Ti: 336.6 / 192.4 of the GTX 580's cell rate.
  const ComparisonRow r = gpu_extrapolated_row(gtx_980ti(), 1);
  EXPECT_NEAR(r.gcells, 30.256, 0.01);
  EXPECT_NEAR(r.gflops, 393.322, 0.2);
  EXPECT_TRUE(r.extrapolated);
  // Tesla P100.
  const ComparisonRow p = gpu_extrapolated_row(tesla_p100(), 1);
  EXPECT_NEAR(p.gcells, 64.799, 0.03);
  EXPECT_NEAR(p.power_efficiency, 4.493, 0.01);
}

TEST(GpuModel, RooflineRatioPreservedUnderExtrapolation) {
  // Scaling the cell rate by the bandwidth ratio keeps the roofline ratio
  // identical -- the hachured rows of Table V share the GTX 580's column.
  for (int rad = 1; rad <= 4; ++rad) {
    const double base = gpu_measured_row(rad).roofline_ratio;
    EXPECT_NEAR(gpu_extrapolated_row(gtx_980ti(), rad).roofline_ratio, base,
                1e-9);
    EXPECT_NEAR(gpu_extrapolated_row(tesla_p100(), rad).roofline_ratio, base,
                1e-9);
  }
}

TEST(GpuModel, UtilizedBandwidthFallsWithRadius) {
  // Section VI.B: on GPUs the utilized memory bandwidth decreases as the
  // stencil order increases (0.72 -> 0.38).
  double prev = 1.0;
  for (int rad = 1; rad <= 4; ++rad) {
    const double r = gpu_measured_row(rad).roofline_ratio;
    EXPECT_LT(r, prev);
    prev = r;
  }
}

TEST(GpuModel, OnlyGpusExtrapolated) {
  EXPECT_THROW(gpu_extrapolated_row(xeon_phi_7210f(), 1), ConfigError);
}

}  // namespace
}  // namespace fpga_stencil
