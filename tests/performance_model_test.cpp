// Tests for the performance model: layer-1 estimates, layer-2 pipeline
// efficiency, and consistency with the functional simulator's raw cycle
// accounting.
#include <gtest/gtest.h>

#include "core/stencil_accelerator.hpp"
#include "harness/experiments.hpp"
#include "harness/paper_reference.hpp"
#include "model/performance_model.hpp"

namespace fpga_stencil {
namespace {

const DeviceSpec kArria = arria10_gx1150();

class Table3Performance
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(Table3Performance, MeasuredThroughputMatchesPaper) {
  // The primary reproduced quantity: "measured" GB/s within 5% of every
  // Table III row (at the paper's fmax the residual is the efficiency
  // model; at our modeled fmax a further few percent can shift).
  const auto [dims, rad] = GetParam();
  const paper::Table3Row& p = paper::table3_row(dims, rad);
  const PerformanceEstimate e =
      estimate_performance(paper_config(dims, rad), kArria, p.fmax_mhz,
                           p.input_x, p.input_y, p.input_z);
  EXPECT_NEAR(e.measured_gbps / p.measured_gbps, 1.0, 0.05)
      << dims << "D rad " << rad;
  EXPECT_NEAR(e.measured_gflops / p.measured_gflops, 1.0, 0.05);
  EXPECT_NEAR(e.measured_gcells / p.measured_gcells, 1.0, 0.05);
}

TEST_P(Table3Performance, EstimateWithinModelingTolerance) {
  // Our layer-1 estimate uses exact streamed-cell accounting (x and y
  // halos plus stream drain); the paper's model is less pessimistic for
  // 3D. Documented tolerance: 2% (2D) / 18% (3D), always underestimating.
  const auto [dims, rad] = GetParam();
  const paper::Table3Row& p = paper::table3_row(dims, rad);
  const PerformanceEstimate e =
      estimate_performance(paper_config(dims, rad), kArria, p.fmax_mhz,
                           p.input_x, p.input_y, p.input_z);
  EXPECT_LE(e.estimated_gbps, p.estimated_gbps * 1.005);
  EXPECT_GE(e.estimated_gbps,
            p.estimated_gbps * (dims == 2 ? 0.97 : 0.82));
}

INSTANTIATE_TEST_SUITE_P(PaperRows, Table3Performance,
                         ::testing::Values(std::pair{2, 1}, std::pair{2, 2},
                                           std::pair{2, 3}, std::pair{2, 4},
                                           std::pair{3, 1}, std::pair{3, 2},
                                           std::pair{3, 3}, std::pair{3, 4}));

TEST(PerformanceModel, PipelineEfficiencyShape) {
  // 2D (narrow accesses): ~0.86 regardless of radius. 3D (64 B accesses):
  // 0.55-0.70, the paper's 40-45% memory-controller loss.
  for (int rad = 1; rad <= 4; ++rad) {
    const paper::Table3Row& p2 = paper::table3_row(2, rad);
    EXPECT_NEAR(pipeline_efficiency(paper_config(2, rad), kArria, p2.fmax_mhz),
                0.86, 1e-9);
    const paper::Table3Row& p3 = paper::table3_row(3, rad);
    const double e3 =
        pipeline_efficiency(paper_config(3, rad), kArria, p3.fmax_mhz);
    EXPECT_GT(e3, 0.5);
    EXPECT_LT(e3, 0.72);
  }
}

TEST(PerformanceModel, MemoryDemand) {
  // 2 streams * parvec * 4 bytes * fmax.
  const AcceleratorConfig cfg = paper_config(3, 1);  // parvec 16
  EXPECT_NEAR(memory_demand_gbps(cfg, 286.61), 2 * 16 * 4 * 0.28661, 1e-6);
}

TEST(PerformanceModel, EffectiveBandwidthDerates) {
  const AcceleratorConfig wide = paper_config(3, 2);    // 64 B accesses
  const AcceleratorConfig narrow = paper_config(2, 2);  // 16 B accesses
  // Narrow accesses keep most of the peak; wide accesses lose ~24% to
  // burst splitting.
  EXPECT_GT(effective_bandwidth_gbps(narrow, kArria, 300.0),
            effective_bandwidth_gbps(wide, kArria, 300.0));
  // A kernel slower than the memory controller derates bandwidth further.
  EXPECT_LT(effective_bandwidth_gbps(wide, kArria, 200.0),
            effective_bandwidth_gbps(wide, kArria, 266.0));
  EXPECT_DOUBLE_EQ(effective_bandwidth_gbps(wide, kArria, 266.0),
                   effective_bandwidth_gbps(wide, kArria, 300.0));
}

TEST(PerformanceModel, RooflineRatiosAboveOneOnFpga) {
  // The headline claim: with temporal blocking, computation throughput
  // exceeds the device's external memory bandwidth in every configuration.
  for (int dims : {2, 3}) {
    for (int rad = 1; rad <= 4; ++rad) {
      const paper::Table3Row& p = paper::table3_row(dims, rad);
      const PerformanceEstimate e =
          estimate_performance(paper_config(dims, rad), kArria, p.fmax_mhz,
                               p.input_x, p.input_y, p.input_z);
      EXPECT_GT(e.roofline_ratio, 1.0) << dims << "D rad " << rad;
    }
  }
}

TEST(PerformanceModel, GflopsFlatGcellsInverseWithRadius2D) {
  // Section VI.A: 2D GCell/s falls roughly proportional to the radius
  // while GFLOP/s stays near 700+.
  std::vector<double> gcells, gflops;
  for (int rad = 1; rad <= 4; ++rad) {
    const FpgaResultRow r = fpga_result_row(2, rad, kArria);
    gcells.push_back(r.perf.measured_gcells);
    gflops.push_back(r.perf.measured_gflops);
  }
  for (int rad = 2; rad <= 4; ++rad) {
    EXPECT_NEAR(gcells[0] / gcells[std::size_t(rad - 1)], rad, 0.75 + rad * 0.2);
    EXPECT_GT(gflops[std::size_t(rad - 1)], 650.0);
  }
}

TEST(PerformanceModel, FirstOrder3DMoreThanTwiceSecondOrder) {
  // Section VI.A: "first-order is more than 2x faster than second-order"
  // in GCell/s for 3D.
  const FpgaResultRow r1 = fpga_result_row(3, 1, kArria);
  const FpgaResultRow r2 = fpga_result_row(3, 2, kArria);
  EXPECT_GT(r1.perf.measured_gcells, 2.0 * r2.perf.measured_gcells);
}

TEST(PerformanceModel, CyclesPerStepMatchesFunctionalSimulator) {
  // The model's cycle count per time step must equal the functional
  // simulator's vectors_processed per pass divided by partime.
  AcceleratorConfig cfg;
  cfg.dims = 2;
  cfg.radius = 2;
  cfg.bsize_x = 64;
  cfg.parvec = 4;
  cfg.partime = 3;
  const std::int64_t nx = 150, ny = 40;
  const PerformanceEstimate e =
      estimate_performance(cfg, kArria, 300.0, nx, ny);

  const StarStencil s = StarStencil::make_benchmark(2, 2);
  StencilAccelerator acc(s, cfg);
  Grid2D<float> g(nx, ny);
  g.fill_random(3);
  const RunStats stats = acc.run(g, cfg.partime);  // one pass
  EXPECT_DOUBLE_EQ(e.cycles_per_step * cfg.partime,
                   double(stats.vectors_processed));
}

TEST(PerformanceModel, ValidFractionMatchesPlanRedundancy) {
  const AcceleratorConfig cfg = paper_config(3, 2);
  const PerformanceEstimate e =
      estimate_performance(cfg, kArria, 262.88, 696, 728, 696);
  const BlockingPlan plan = make_blocking_plan(cfg, 696, 728, 696);
  EXPECT_DOUBLE_EQ(e.valid_fraction, 1.0 / plan.redundancy());
}

TEST(PerformanceModel, InvalidInputsThrow) {
  EXPECT_THROW(
      estimate_performance(paper_config(2, 1), kArria, -1.0, 100, 100),
      ConfigError);
  EXPECT_THROW(effective_bandwidth_gbps(paper_config(2, 1),
                                        xeon_e5_2650v4(), 300.0),
               ConfigError);
}

}  // namespace
}  // namespace fpga_stencil
