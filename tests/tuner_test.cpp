// Tests for the design-space exploration (paper Section V.A).
#include <gtest/gtest.h>

#include <algorithm>

#include "harness/experiments.hpp"
#include "tune/tuner.hpp"

namespace fpga_stencil {
namespace {

const DeviceSpec kArria = arria10_gx1150();

TunerOptions options_for(int dims, int rad) {
  TunerOptions o;
  o.dims = dims;
  o.radius = rad;
  if (dims == 2) {
    o.nx = 16096;
    o.ny = 16096;
    o.nz = 1;
  } else {
    o.nx = 696;
    o.ny = 696;
    o.nz = 696;
  }
  return o;
}

TEST(Tuner, DefaultsMatchPaperCandidates) {
  TunerOptions o2 = options_for(2, 1);
  o2.apply_defaults();
  EXPECT_EQ(o2.bsize_x_candidates, std::vector<std::int64_t>{4096});
  TunerOptions o3 = options_for(3, 1);
  o3.apply_defaults();
  EXPECT_EQ(o3.bsize_x_candidates, (std::vector<std::int64_t>{256, 128}));
  EXPECT_EQ(o3.bsize_y_candidates, (std::vector<std::int64_t>{256, 128}));
}

TEST(Tuner, AllCandidatesSatisfyConstraints) {
  for (int dims : {2, 3}) {
    for (int rad : {1, 2, 4}) {
      TunerOptions o = options_for(dims, rad);
      o.alignment = AlignmentRule::kRequire;
      const auto configs = enumerate_configs(kArria, o);
      ASSERT_FALSE(configs.empty()) << dims << "D rad " << rad;
      const std::int64_t partotal =
          max_total_parallelism(kArria, dims, rad);
      for (const TunedConfig& tc : configs) {
        // eq. (5): partime * parvec <= partotal
        EXPECT_LE(std::int64_t(tc.config.partime) * tc.config.parvec,
                  partotal);
        // eq. (6) under kRequire
        EXPECT_TRUE(tc.config.meets_alignment_rule());
        EXPECT_TRUE(tc.usage.fits());
        EXPECT_EQ(tc.config.parvec % 2, 0);
        EXPECT_GT(tc.config.csize_x(), 0);
      }
    }
  }
}

TEST(Tuner, RankedByScoreDescending) {
  const auto configs = enumerate_configs(kArria, options_for(2, 2));
  ASSERT_GE(configs.size(), 2u);
  for (std::size_t i = 1; i < configs.size(); ++i) {
    EXPECT_GE(configs[i - 1].score, configs[i].score);
  }
}

TEST(Tuner, BestConfigNearPaperThroughput2D) {
  // Our search must find configurations at least as good (per the model)
  // as the paper's published ones.
  for (int rad = 1; rad <= 4; ++rad) {
    const TunedConfig best = best_config(kArria, options_for(2, rad));
    const FpgaResultRow paper_row = fpga_result_row(2, rad, kArria);
    EXPECT_GE(best.perf.measured_gbps,
              paper_row.perf.measured_gbps * 0.98)
        << "rad " << rad << " best=" << best.config.describe();
  }
}

TEST(Tuner, BestConfig3DMatchesPaperShape) {
  // Section VI.A: for 3D the best high-order configuration is the
  // first-order one with partime divided by the radius (parvec 16 stays).
  for (int rad = 2; rad <= 4; ++rad) {
    const TunedConfig best = best_config(kArria, options_for(3, rad));
    EXPECT_EQ(best.config.parvec, 16) << best.config.describe();
    const FpgaResultRow paper_row = fpga_result_row(3, rad, kArria);
    EXPECT_GE(best.perf.measured_gbps, paper_row.perf.measured_gbps * 0.98)
        << "rad " << rad << " best=" << best.config.describe();
  }
}

TEST(Tuner, PaperConfigsAreEnumerated) {
  // The exact Table III configurations must appear in the search space.
  for (int dims : {2, 3}) {
    for (int rad = 1; rad <= 4; ++rad) {
      const AcceleratorConfig want = paper_config(dims, rad);
      const auto configs = enumerate_configs(kArria, options_for(dims, rad));
      const bool found =
          std::any_of(configs.begin(), configs.end(), [&](const auto& tc) {
            return tc.config.bsize_x == want.bsize_x &&
                   tc.config.bsize_y == want.bsize_y &&
                   tc.config.parvec == want.parvec &&
                   tc.config.partime == want.partime;
          });
      EXPECT_TRUE(found) << dims << "D rad " << rad << ": "
                         << want.describe();
    }
  }
}

TEST(Tuner, AlignmentPreferencePenalizesButKeeps) {
  TunerOptions o = options_for(3, 5);  // odd radius: partime 2 unaligned
  o.alignment = AlignmentRule::kPrefer;
  const auto preferred = enumerate_configs(kArria, o);
  ASSERT_FALSE(preferred.empty());
  const bool has_unaligned =
      std::any_of(preferred.begin(), preferred.end(),
                  [](const auto& tc) { return !tc.meets_alignment; });
  EXPECT_TRUE(has_unaligned);
  for (const TunedConfig& tc : preferred) {
    if (!tc.meets_alignment) {
      EXPECT_NEAR(tc.score, tc.perf.measured_gbps * 0.9, 1e-9);
    }
  }
}

TEST(Tuner, HighOrder3DLimitedToPartime2) {
  // Section VI.A projection, via the tuner: at the paper's high-order
  // block size (256x128), radius-5/6 3D stencils admit no feasible
  // configuration with more than two PEs -- Block RAM bits run out.
  for (int rad : {5, 6}) {
    TunerOptions o = options_for(3, rad);
    o.alignment = AlignmentRule::kIgnore;
    o.bsize_x_candidates = {256};
    o.bsize_y_candidates = {128};
    const auto configs = enumerate_configs(kArria, o);
    ASSERT_FALSE(configs.empty()) << "rad " << rad;
    for (const TunedConfig& tc : configs) {
      EXPECT_LE(tc.config.partime, 2) << tc.config.describe();
    }
  }
}

TEST(Tuner, ScaleFirstOrderHeuristic) {
  const AcceleratorConfig first = paper_config(3, 1);  // partime 12
  for (int rad = 2; rad <= 4; ++rad) {
    const AcceleratorConfig scaled = scale_first_order_config(first, rad);
    EXPECT_EQ(scaled.partime, 12 / rad);
    EXPECT_EQ(scaled.parvec, first.parvec);
    EXPECT_EQ(scaled.radius, rad);
  }
  EXPECT_THROW(scale_first_order_config(paper_config(3, 2), 3), ConfigError);
}

TEST(Tuner, NoFitThrows) {
  TunerOptions o = options_for(3, 4);
  o.bsize_x_candidates = {2048};  // shift registers far beyond the device
  o.bsize_y_candidates = {2048};
  EXPECT_THROW(best_config(kArria, o), ResourceError);
}

TEST(Tuner, NeedsTargetGrid) {
  TunerOptions o;
  o.dims = 2;
  o.radius = 1;
  EXPECT_THROW(enumerate_configs(kArria, o), ConfigError);
}

}  // namespace
}  // namespace fpga_stencil
