// Tests for the telemetry subsystem: metrics registry semantics (including
// find-or-create under thread contention), histogram bucket edges,
// snapshot export (JSON/CSV), and the Chrome trace_event emitter.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "pipeline/sync_channel.hpp"
#include "telemetry/telemetry.hpp"

namespace fpga_stencil {
namespace {

TEST(Metrics, CounterGaugeBasics) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a.count");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  // Find-or-create: same name, same instrument.
  EXPECT_EQ(&reg.counter("a.count"), &c);

  Gauge& g = reg.gauge("a.level");
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.max_of(3);
  EXPECT_EQ(g.value(), 7);  // lower values never lower a high-water mark
  g.max_of(12);
  EXPECT_EQ(g.value(), 12);
}

TEST(Metrics, HistogramBucketEdges) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", {10, 100});
  h.observe(0);    // <= 10        -> bucket 0
  h.observe(10);   // == bound     -> bucket 0 (bounds are inclusive)
  h.observe(11);   // first above  -> bucket 1
  h.observe(100);  // == bound     -> bucket 1
  h.observe(101);  // above top    -> overflow bucket 2
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.bucket_count(1), 2);
  EXPECT_EQ(h.bucket_count(2), 1);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum(), 0 + 10 + 11 + 100 + 101);
  // Re-registration keeps the original instrument and bounds.
  EXPECT_EQ(&reg.histogram("lat", {1, 2, 3}), &h);
  EXPECT_EQ(h.bounds().size(), 2u);
}

TEST(Metrics, RegistryConcurrencyEightThreads) {
  // 8 threads race find-or-create on shared names AND update through the
  // returned references; totals must be exact (run under TSan in the
  // sanitize build).
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      Counter& shared = reg.counter("shared.count");
      Gauge& water = reg.gauge("shared.high_water");
      Histogram& h = reg.histogram("shared.lat", {8, 64, 512});
      Counter& mine = reg.counter("thread." + std::to_string(t) + ".count");
      for (int i = 0; i < kPerThread; ++i) {
        shared.add(1);
        mine.add(1);
        water.max_of(i);
        h.observe(i % 1000);
      }
    });
  }
  for (auto& th : threads) th.join();

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.value_or("shared.count", -1), kThreads * kPerThread);
  EXPECT_EQ(snap.value_or("shared.high_water", -1), kPerThread - 1);
  const MetricSample* h = snap.find("shared.lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->value, kThreads * kPerThread);  // observation count
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.value_or("thread." + std::to_string(t) + ".count", -1),
              kPerThread);
  }
}

TEST(Metrics, SnapshotExportsValidJsonAndCsv) {
  MetricsRegistry reg;
  reg.counter("pipe.cells").add(96);
  reg.gauge("pipe.depth \"quoted\"").set(-3);  // name needing escaping
  reg.histogram("pipe.ns", {100, 1000}).observe(250);

  std::ostringstream json;
  reg.snapshot().write_json(json);
  EXPECT_TRUE(json_is_valid(json.str())) << json.str();
  EXPECT_NE(json.str().find("pipe.cells"), std::string::npos);

  std::ostringstream csv;
  reg.snapshot().write_csv(csv);
  EXPECT_NE(csv.str().find("metric,kind,value,sum"), std::string::npos);
  EXPECT_NE(csv.str().find("pipe.cells,counter,96"), std::string::npos);

  // Snapshots are name-sorted for deterministic diffs.
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  for (std::size_t i = 1; i < snap.samples.size(); ++i) {
    EXPECT_LT(snap.samples[i - 1].name, snap.samples[i].name);
  }
}

TEST(Trace, SpansInstantsAndChromeExport) {
  Tracer tracer;
  tracer.set_thread_name(0, "read_kernel");
  tracer.set_thread_name(1, "PE0");
  {
    Tracer::Span pass = tracer.span("pass", 0);
    Tracer::Span pe = tracer.span("PE0", 1, "pipeline");
    tracer.instant("watchdog_trip", 0, "fault");
    pe.end();
    pe.end();  // idempotent
  }  // pass records on destruction
  tracer.complete("checkpoint", "fault", 0, 10, 2000);

  EXPECT_EQ(tracer.event_count(), 4u);
  const std::vector<std::string> names = tracer.event_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "pass"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "watchdog_trip"),
            names.end());

  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string doc = os.str();
  EXPECT_TRUE(json_is_valid(doc)) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);  // complete span
  EXPECT_NE(doc.find("\"ph\": \"i\""), std::string::npos);  // instant
  EXPECT_NE(doc.find("\"ph\": \"M\""), std::string::npos);  // thread_name
  EXPECT_NE(doc.find("read_kernel"), std::string::npos);
}

TEST(Trace, MovedSpanRecordsOnce) {
  Tracer tracer;
  {
    Tracer::Span outer;
    {
      Tracer::Span inner = tracer.span("work", 2);
      outer = std::move(inner);
    }  // inner destructs empty: no record
    EXPECT_EQ(tracer.event_count(), 0u);
  }
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST(Telemetry, ChannelProbeMeasuresDepthAndBlockedTime) {
  Telemetry tel;
  SyncChannel<int> ch(4);
  ch.attach_probe(make_channel_probe(tel, "channel.0"));

  std::thread producer([&] {
    for (int i = 0; i < 64; ++i) ch.write(i);
    ch.close();
  });
  // Let the producer fill the channel so the high-water mark and its
  // blocked-write clock both engage before draining.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  while (ch.read()) {
  }
  producer.join();

  const MetricsSnapshot snap = tel.metrics().snapshot();
  const std::int64_t high_water = snap.value_or("channel.0.high_water", -1);
  EXPECT_GE(high_water, 1);
  EXPECT_LE(high_water, 4);  // never above the configured capacity
  EXPECT_GT(snap.value_or("channel.0.blocked_write_ns", -1), 0);
}

TEST(Telemetry, RecordPassMetricsVocabulary) {
  Telemetry tel;
  record_pass_metrics(tel, "pipeline", /*cells_written=*/1000,
                      /*pass_ns=*/2'000'000);
  const MetricsSnapshot snap = tel.metrics().snapshot();
  EXPECT_EQ(snap.value_or("pipeline.passes", -1), 1);
  EXPECT_EQ(snap.value_or("pipeline.cells_written", -1), 1000);
  EXPECT_EQ(snap.value_or("pipeline.pass.cells_per_s", -1), 500'000);
  const MetricSample* h = snap.find("pipeline.pass_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->value, 1);
  EXPECT_EQ(h->sum, 2'000'000);
}

TEST(Json, ValidatorRejectsMalformedDocuments) {
  EXPECT_TRUE(json_is_valid(R"({"a": [1, 2.5e3, true, null, "x\n"]})"));
  EXPECT_FALSE(json_is_valid(""));
  EXPECT_FALSE(json_is_valid("{"));
  EXPECT_FALSE(json_is_valid(R"({"a": 1,})"));
  EXPECT_FALSE(json_is_valid(R"({"a": 01})"));
  EXPECT_FALSE(json_is_valid("[1, 2] trailing"));
  EXPECT_FALSE(json_is_valid("\"unterminated"));
}

}  // namespace
}  // namespace fpga_stencil
