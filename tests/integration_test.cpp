// Cross-module integration tests: the full user-facing flows.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "codegen/kernel_generator.hpp"
#include "core/stencil_accelerator.hpp"
#include "cpu/yask_like.hpp"
#include "grid/grid_compare.hpp"
#include "harness/experiments.hpp"
#include "ocl/opencl_shim.hpp"
#include "stencil/reference.hpp"
#include "tune/tuner.hpp"

namespace fpga_stencil {
namespace {

/// Flow 1: tune -> express as aoc build options -> build -> run -> verify.
TEST(Integration, TuneBuildRunVerify) {
  const DeviceSpec device = arria10_gx1150();
  TunerOptions opts;
  opts.dims = 2;
  opts.radius = 3;
  opts.nx = 200;
  opts.ny = 60;
  opts.bsize_x_candidates = {64};
  opts.max_parvec = 4;
  opts.max_partime = 4;
  const TunedConfig tuned = best_config(device, opts);

  std::ostringstream build;
  build << "-DDIM=2 -DRAD=3 -DBSIZE_X=" << tuned.config.bsize_x
        << " -DPAR_VEC=" << tuned.config.parvec
        << " -DPAR_TIME=" << tuned.config.partime;

  const ocl::Platform plat = ocl::Platform::intel_fpga_sdk();
  const ocl::Context ctx(plat.device_by_name("Arria 10"));
  const ocl::Program prog = ocl::Program::build(ctx, build.str());
  EXPECT_EQ(prog.config().partime, tuned.config.partime);

  const StarStencil s = StarStencil::make_benchmark(2, 3);
  Grid2D<float> grid(200, 60);
  grid.fill_random(2024);
  Grid2D<float> want = grid;
  reference_run(s, want, 7);

  const std::size_t bytes = 200 * 60 * sizeof(float);
  ocl::CommandQueue q(ctx);
  ocl::Buffer in(ctx, bytes), out(ctx, bytes);
  q.enqueue_write_buffer(in, grid.data(), bytes);
  q.enqueue_stencil_2d(prog, s, in, out, 200, 60, 7);
  Grid2D<float> got(200, 60);
  q.enqueue_read_buffer(out, got.data(), bytes);
  EXPECT_TRUE(compare_exact(got, want).identical());
}

/// Flow 2: generated kernel source exists and is structurally sound for
/// every configuration the paper synthesized.
TEST(Integration, CodegenForAllPaperConfigs) {
  for (int dims : {2, 3}) {
    for (int rad = 1; rad <= 4; ++rad) {
      const CodegenOptions o{paper_config(dims, rad), true};
      const std::string src = generate_kernel_source(o);
      const SourceMetrics m = analyze_source(src);
      EXPECT_TRUE(m.balanced) << dims << "D rad " << rad;
      EXPECT_EQ(m.accumulations,
                std::int64_t(o.config.parvec) * 2 * dims * rad);
    }
  }
}

/// Flow 3: three executors (naive reference, FPGA pipeline, YASK-like CPU)
/// agree bit-for-bit on the same problem.
TEST(Integration, ThreeExecutorsAgree) {
  const StarStencil s = StarStencil::make_benchmark(3, 2, 77);
  const std::int64_t nx = 30, ny = 26, nz = 10;
  const int iters = 4;

  Grid3D<float> ref(nx, ny, nz);
  ref.fill_random(4);
  Grid3D<float> fpga = ref;
  Grid3D<float> cpu = ref;

  reference_run(s, ref, iters);

  AcceleratorConfig cfg;
  cfg.dims = 3;
  cfg.radius = 2;
  cfg.bsize_x = 24;
  cfg.bsize_y = 16;
  cfg.parvec = 4;
  cfg.partime = 2;
  StencilAccelerator accel(s, cfg);
  accel.run(fpga, iters);

  YaskLikeStencil3D yask(s);
  yask.run(cpu, iters, CpuBlockSize{nx, 8, 4});

  EXPECT_TRUE(compare_exact(fpga, ref).identical());
  EXPECT_TRUE(compare_exact(cpu, ref).identical());
}

/// Flow 4: a physics-flavored scenario -- high-order diffusion smoothing of
/// a hot spot. The convex stencil must conserve the maximum principle and
/// spread mass outward symmetrically.
TEST(Integration, DiffusionPhysicsSanity) {
  const StarStencil s = StarStencil::make_shared_coefficient(2, 4);
  const std::int64_t n = 41;
  Grid2D<float> g(n, n, 0.0f);
  g.at(20, 20) = 100.0f;

  AcceleratorConfig cfg;
  cfg.dims = 2;
  cfg.radius = 4;
  cfg.bsize_x = 64;
  cfg.parvec = 4;
  cfg.partime = 2;
  StencilAccelerator accel(s, cfg);
  accel.run(g, 10);

  float peak = -1.0f;
  std::int64_t px = -1, py = -1;
  double total = 0.0;
  for (std::int64_t y = 0; y < n; ++y) {
    for (std::int64_t x = 0; x < n; ++x) {
      const float v = g.at(x, y);
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 100.0f);  // maximum principle
      total += v;
      if (v > peak) {
        peak = v;
        px = x;
        py = y;
      }
    }
  }
  EXPECT_EQ(px, 20);
  EXPECT_EQ(py, 20);
  EXPECT_LT(peak, 100.0f);  // it actually diffused
  EXPECT_GT(total, 50.0);   // mass not lost wholesale (interior-conserving)
  // Symmetry: the shared-coefficient stencil is mirror symmetric.
  for (std::int64_t d = 1; d < 10; ++d) {
    EXPECT_FLOAT_EQ(g.at(20 - d, 20), g.at(20 + d, 20));
    EXPECT_FLOAT_EQ(g.at(20, 20 - d), g.at(20, 20 + d));
    EXPECT_FLOAT_EQ(g.at(20 - d, 20), g.at(20, 20 + d));
  }
}

/// Flow 5: the modeled device time from the OpenCL shim's profiling event
/// is consistent with the performance model's throughput for the same
/// problem.
TEST(Integration, ProfilingConsistentWithModel) {
  const ocl::Platform plat = ocl::Platform::intel_fpga_sdk();
  const ocl::Context ctx(plat.device_by_name("Arria 10"));
  const ocl::Program prog = ocl::Program::build(
      ctx, "-DDIM=2 -DRAD=2 -DBSIZE_X=64 -DPAR_VEC=4 -DPAR_TIME=4");
  const StarStencil s = StarStencil::make_benchmark(2, 2);
  const std::int64_t nx = 112, ny = 40;
  const int iters = 8;
  const std::size_t bytes = std::size_t(nx * ny) * sizeof(float);

  Grid2D<float> grid(nx, ny);
  grid.fill_random(6);
  ocl::CommandQueue q(ctx);
  ocl::Buffer in(ctx, bytes), out(ctx, bytes);
  q.enqueue_write_buffer(in, grid.data(), bytes);
  const ocl::Event ev = q.enqueue_stencil_2d(prog, s, in, out, nx, ny, iters);

  const PerformanceEstimate e = estimate_performance(
      prog.config(), ctx.device().spec(), prog.report().fmax_mhz, nx, ny);
  const double model_seconds =
      double(nx * ny) * iters / (e.measured_gcells * 1e9);
  EXPECT_NEAR(ev.device_seconds / model_seconds, 1.0, 0.02);
}

}  // namespace
}  // namespace fpga_stencil
