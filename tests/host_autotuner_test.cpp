// Tests for the empirical host autotuner (PR 9): candidate enumeration
// invariants, TuningCache persistence/corruption/merge behavior, the
// resolve() mode semantics, tuned-vs-default bit-exactness, and the
// engine/cluster integration (one search per cached plan, never on the
// job hot path).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.hpp"
#include "common/json.hpp"
#include "core/host_profile.hpp"
#include "core/plan_candidates.hpp"
#include "core/stencil_accelerator.hpp"
#include "engine/engine_cluster.hpp"
#include "engine/stencil_engine.hpp"
#include "grid/grid_compare.hpp"
#include "stencil/box_stencil.hpp"
#include "stencil/star_stencil.hpp"
#include "tune/host_autotuner.hpp"
#include "tune/tuning_cache.hpp"

namespace fpga_stencil {
namespace {

AcceleratorConfig base2d(int radius = 2) {
  AcceleratorConfig cfg;
  cfg.dims = 2;
  cfg.radius = radius;
  cfg.bsize_x = 4096;
  cfg.parvec = 4;
  cfg.partime = 4;
  return cfg;
}

AcceleratorConfig base3d(int radius = 1) {
  AcceleratorConfig cfg;
  cfg.dims = 3;
  cfg.radius = radius;
  cfg.bsize_x = 256;
  cfg.bsize_y = 128;
  cfg.parvec = 4;
  cfg.partime = 4;
  return cfg;
}

/// Tiny probe budgets so every search finishes in milliseconds.
HostAutotunerOptions tiny_options(const std::string& cache_path = "") {
  HostAutotunerOptions o;
  o.cache_path = cache_path;
  o.probe_cells = 4 * 1024;
  o.probe_repeats = 1;
  o.candidates.max_candidates = 4;
  return o;
}

std::string temp_cache_path(const std::string& tag) {
  return testing::TempDir() + "tuning_cache_" + tag + "_" +
         std::to_string(::getpid()) + ".json";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ---------------------------------------------------------------------------
// Candidate enumeration

TEST(PlanCandidates, RequestIsAlwaysCandidateZero) {
  for (const AcceleratorConfig& base : {base2d(), base3d()}) {
    const auto cands = enumerate_plan_candidates(
        base, 256, base.dims == 3 ? 96 : 128, base.dims == 3 ? 64 : 1);
    ASSERT_FALSE(cands.empty());
    EXPECT_EQ(cands[0].bsize_x, base.bsize_x);
    EXPECT_EQ(cands[0].bsize_y, base.bsize_y);
    EXPECT_EQ(cands[0].partime, base.partime);
  }
}

TEST(PlanCandidates, AllCandidatesValidAndPerformanceOnly) {
  const AcceleratorConfig base = base3d(2);
  const auto cands = enumerate_plan_candidates(base, 128, 96, 64);
  ASSERT_GT(cands.size(), 1u) << "model produced no alternatives to probe";
  for (const AcceleratorConfig& c : cands) {
    EXPECT_NO_THROW(c.validate());
    EXPECT_EQ(c.bsize_x % c.parvec, 0);
    // Only the geometry knobs may differ from the request: the stencil
    // identity and the vector width are part of the fingerprint.
    EXPECT_EQ(c.dims, base.dims);
    EXPECT_EQ(c.radius, base.radius);
    EXPECT_EQ(c.parvec, base.parvec);
  }
}

TEST(PlanCandidates, BudgetCapsEnumeration) {
  PlanCandidateOptions opts;
  opts.max_candidates = 3;
  const auto cands = enumerate_plan_candidates(base3d(), 128, 96, 64, opts);
  EXPECT_LE(cands.size(), 4u);  // request + at most max_candidates
}

// ---------------------------------------------------------------------------
// TuningCache persistence

TEST(TuningCache, RoundTripThroughDisk) {
  const std::string path = temp_cache_path("roundtrip");
  const TuningKey key{"stencil-a", "x256y128", "host-1"};
  TunedPlanEntry entry;
  entry.bsize_x = 144;
  entry.bsize_y = 144;
  entry.partime = 2;
  entry.tuned_mcells = 321.5;
  entry.baseline_mcells = 123.25;
  entry.candidates_probed = 7;
  {
    TuningCache cache(path);
    cache.put(key, entry);
  }
  EXPECT_TRUE(json_is_valid(read_file(path)));
  TuningCache fresh(path);
  const auto found = fresh.find(key);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->bsize_x, 144);
  EXPECT_EQ(found->bsize_y, 144);
  EXPECT_EQ(found->partime, 2);
  EXPECT_DOUBLE_EQ(found->tuned_mcells, 321.5);
  EXPECT_DOUBLE_EQ(found->baseline_mcells, 123.25);
  EXPECT_EQ(found->candidates_probed, 7);
  std::remove(path.c_str());
}

TEST(TuningCache, CorruptedFileFallsBackToEmptyWithoutThrowing) {
  const std::string path = temp_cache_path("corrupt");
  {
    std::ofstream out(path);
    out << "{ \"schema_version\": 1, \"entries\": [ { \"key\": \"a|b";
  }
  TuningCache cache(path);
  EXPECT_FALSE(cache.find(TuningKey{"a", "b", "c"}).has_value());
  // put() rebuilds the file from scratch.
  TunedPlanEntry entry;
  entry.bsize_x = 64;
  cache.put(TuningKey{"a", "b", "c"}, entry);
  EXPECT_TRUE(json_is_valid(read_file(path)));
  TuningCache fresh(path);
  EXPECT_TRUE(fresh.find(TuningKey{"a", "b", "c"}).has_value());
  std::remove(path.c_str());
}

TEST(TuningCache, TruncatedFileFallsBackToEmpty) {
  const std::string path = temp_cache_path("truncated");
  const TuningKey key{"s", "e", "h"};
  {
    TuningCache cache(path);
    TunedPlanEntry entry;
    entry.bsize_x = 96;
    cache.put(key, entry);
  }
  const std::string full = read_file(path);
  {
    std::ofstream out(path, std::ios::trunc);
    out << full.substr(0, full.size() / 2);
  }
  TuningCache cache(path);
  EXPECT_FALSE(cache.find(key).has_value());
  std::remove(path.c_str());
}

TEST(TuningCache, SchemaVersionMismatchIgnored) {
  const std::string path = temp_cache_path("version");
  {
    std::ofstream out(path);
    out << "{\"schema_version\": 99, \"entries\": [{\"key\": \"s|e|h\", "
           "\"bsize_x\": 32, \"bsize_y\": 1, \"partime\": 1, "
           "\"tuned_mcells\": 1.0, \"baseline_mcells\": 1.0, "
           "\"candidates_probed\": 1}]}\n";
  }
  TuningCache cache(path);
  EXPECT_FALSE(cache.find(TuningKey{"s", "e", "h"}).has_value());
  std::remove(path.c_str());
}

TEST(TuningCache, HostFingerprintMismatchInvalidates) {
  const std::string path = temp_cache_path("hostfp");
  {
    TuningCache cache(path);
    TunedPlanEntry entry;
    entry.bsize_x = 128;
    cache.put(TuningKey{"stencil", "x256y128", "old-host"}, entry);
  }
  TuningCache fresh(path);
  EXPECT_TRUE(
      fresh.find(TuningKey{"stencil", "x256y128", "old-host"}).has_value());
  EXPECT_FALSE(
      fresh.find(TuningKey{"stencil", "x256y128", "new-host"}).has_value());
  std::remove(path.c_str());
}

TEST(TuningCache, TwoEnginesSharingOneFileMergeTheirEntries) {
  const std::string path = temp_cache_path("merge");
  TuningCache a(path);
  TuningCache b(path);  // a second engine, same backing file
  TunedPlanEntry entry;
  entry.bsize_x = 64;
  a.put(TuningKey{"s1", "e", "h"}, entry);
  entry.bsize_x = 96;
  b.put(TuningKey{"s2", "e", "h"}, entry);  // merges s1 from disk first
  TuningCache fresh(path);
  const auto e1 = fresh.find(TuningKey{"s1", "e", "h"});
  const auto e2 = fresh.find(TuningKey{"s2", "e", "h"});
  ASSERT_TRUE(e1.has_value());
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(e1->bsize_x, 64);
  EXPECT_EQ(e2->bsize_x, 96);
  std::remove(path.c_str());
}

TEST(TuningCache, ConcurrentWritersNeverTearTheFile) {
  const std::string path = temp_cache_path("concurrent");
  constexpr int kThreads = 4;
  constexpr int kPutsPerThread = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TuningCache cache(path);  // each thread acts as its own engine
      for (int i = 0; i < kPutsPerThread; ++i) {
        TunedPlanEntry entry;
        entry.bsize_x = 32 + 32 * i;
        cache.put(TuningKey{"s" + std::to_string(t), "e" + std::to_string(i),
                            "h"},
                  entry);
        // Every intermediate published file must be a complete document.
        EXPECT_TRUE(json_is_valid(read_file(path)));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_TRUE(json_is_valid(read_file(path)));
  // Whichever put() published last had merged the disk under its own
  // in-memory entries, so at least that engine's full set survives.
  TuningCache fresh(path);
  int found = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPutsPerThread; ++i) {
      found += fresh.find(TuningKey{"s" + std::to_string(t),
                                    "e" + std::to_string(i), "h"})
                       .has_value()
                   ? 1
                   : 0;
    }
  }
  EXPECT_GE(found, kPutsPerThread);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// HostAutotuner

TEST(HostAutotuner, FingerprintSeparatesStencilAndEnvelope) {
  const TapSet star = StarStencil::make_benchmark(2, 2, 7).to_taps();
  const TapSet box = make_box_stencil(2, 2, 7);
  const AcceleratorConfig base = base2d(2);
  AcceleratorConfig wide = base;
  wide.parvec = 8;
  const std::string fp = HostAutotuner::stencil_fingerprint(star, base);
  EXPECT_FALSE(fp.empty());
  EXPECT_EQ(fp, HostAutotuner::stencil_fingerprint(star, base));
  EXPECT_NE(fp, HostAutotuner::stencil_fingerprint(box, base));
  EXPECT_NE(fp, HostAutotuner::stencil_fingerprint(star, wide));
}

TEST(HostAutotuner, ExtentsClassQuantizesNearbyGrids) {
  EXPECT_EQ(HostAutotuner::extents_class(3, 500, 512, 520),
            HostAutotuner::extents_class(3, 512, 512, 512));
  EXPECT_NE(HostAutotuner::extents_class(3, 512, 512, 512),
            HostAutotuner::extents_class(3, 128, 128, 128));
  EXPECT_NE(HostAutotuner::extents_class(2, 512, 256, 1),
            HostAutotuner::extents_class(3, 512, 256, 1));
}

TEST(HostAutotuner, ResolveOffReturnsNothing) {
  HostAutotuner tuner(tiny_options());
  const TapSet taps = StarStencil::make_benchmark(2, 1, 7).to_taps();
  EXPECT_FALSE(tuner
                   .resolve(taps, base2d(1), 128, 64, 1, AutotuneMode::off)
                   .has_value());
}

TEST(HostAutotuner, CachedOnlyMissesThenSearchPopulates) {
  HostAutotuner tuner(tiny_options());
  const TapSet taps = StarStencil::make_benchmark(2, 1, 7).to_taps();
  const AcceleratorConfig base = base2d(1);
  EXPECT_FALSE(
      tuner.resolve(taps, base, 128, 64, 1, AutotuneMode::cached_only)
          .has_value());
  const auto searched =
      tuner.resolve(taps, base, 128, 64, 1, AutotuneMode::search);
  ASSERT_TRUE(searched.has_value());
  EXPECT_TRUE(searched->searched);
  EXPECT_FALSE(searched->from_cache);
  EXPECT_GE(searched->candidates_probed, 1);
  EXPECT_GT(searched->tuned_mcells, 0.0);
  // The default is always a candidate, so the winner can't lose to it.
  EXPECT_GE(searched->tuned_mcells, searched->baseline_mcells);
  // Second resolve: served from the cache, no new search.
  const auto cached =
      tuner.resolve(taps, base, 128, 64, 1, AutotuneMode::cached_only);
  ASSERT_TRUE(cached.has_value());
  EXPECT_TRUE(cached->from_cache);
  EXPECT_FALSE(cached->searched);
  EXPECT_EQ(cached->config.bsize_x, searched->config.bsize_x);
  EXPECT_EQ(cached->config.partime, searched->config.partime);
}

TEST(HostAutotuner, InvalidCachedEntryIsIgnored) {
  HostAutotuner tuner(tiny_options());
  const TapSet taps = StarStencil::make_benchmark(2, 1, 7).to_taps();
  const AcceleratorConfig base = base2d(1);
  const TuningKey key{HostAutotuner::stencil_fingerprint(taps, base),
                      HostAutotuner::extents_class(2, 128, 64, 1),
                      host_profile().fingerprint()};
  TunedPlanEntry bogus;
  bogus.bsize_x = 7;  // not a parvec multiple: fails validate()
  bogus.partime = 3;
  tuner.cache().put(key, bogus);
  EXPECT_FALSE(
      tuner.resolve(taps, base, 128, 64, 1, AutotuneMode::cached_only)
          .has_value());
}

TEST(HostAutotuner, TrippedTokenAbortsSearch) {
  HostAutotuner tuner(tiny_options());
  const TapSet taps = StarStencil::make_benchmark(2, 1, 7).to_taps();
  const CancellationToken token = CancellationToken::make();
  token.request_cancel();
  EXPECT_THROW(tuner.search(taps, base2d(1), 128, 64, 1, &token),
               CancelledError);
  EXPECT_EQ(tuner.cache().size(), 0u);  // nothing persisted
}

TEST(HostAutotuner, SearchPersistsAcrossProcessesViaDisk) {
  const std::string path = temp_cache_path("resolve");
  const TapSet taps = StarStencil::make_benchmark(2, 2, 7).to_taps();
  const AcceleratorConfig base = base2d(2);
  AcceleratorConfig winner;
  {
    HostAutotuner tuner(tiny_options(path));
    const auto out =
        tuner.resolve(taps, base, 160, 96, 1, AutotuneMode::search);
    ASSERT_TRUE(out.has_value());
    winner = out->config;
  }
  // A "new process": fresh tuner, same file, cached_only succeeds.
  HostAutotuner tuner(tiny_options(path));
  const auto out =
      tuner.resolve(taps, base, 160, 96, 1, AutotuneMode::cached_only);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->from_cache);
  EXPECT_EQ(out->config.bsize_x, winner.bsize_x);
  EXPECT_EQ(out->config.bsize_y, winner.bsize_y);
  EXPECT_EQ(out->config.partime, winner.partime);
  std::remove(path.c_str());
}

// Block geometry and temporal depth are performance-only knobs: whatever
// the search picks must reproduce the paper-default result bit-for-bit.
TEST(HostAutotuner, TunedPlansAreBitExactWithDefault) {
  HostAutotuner tuner(tiny_options());
  struct Point {
    TapSet taps;
    AcceleratorConfig base;
  };
  const std::vector<Point> points = {
      {StarStencil::make_benchmark(2, 1, 7).to_taps(), base2d(1)},
      {StarStencil::make_benchmark(2, 4, 7).to_taps(), base2d(4)},
      {make_box_stencil(2, 2, 9), base2d(2)},
      {StarStencil::make_benchmark(3, 2, 7).to_taps(), base3d(2)},
      {make_box_stencil(3, 1, 9), base3d(1)},
  };
  for (const Point& p : points) {
    const int iters = p.base.partime;
    if (p.base.dims == 2) {
      const auto out = tuner.search(p.taps, p.base, 160, 96, 1);
      Grid2D<float> want(160, 96);
      want.fill_random(11, -1.0f, 1.0f);
      Grid2D<float> got = want;
      StencilAccelerator(p.taps, p.base).run(want, iters);
      StencilAccelerator(p.taps, out.config).run(got, iters);
      EXPECT_TRUE(compare_exact(got, want).identical())
          << "r" << p.base.radius << " 2D tuned plan diverged";
    } else {
      const auto out = tuner.search(p.taps, p.base, 40, 28, 20);
      Grid3D<float> want(40, 28, 20);
      want.fill_random(12, -1.0f, 1.0f);
      Grid3D<float> got = want;
      StencilAccelerator(p.taps, p.base).run(want, iters);
      StencilAccelerator(p.taps, out.config).run(got, iters);
      EXPECT_TRUE(compare_exact(got, want).identical())
          << "r" << p.base.radius << " 3D tuned plan diverged";
    }
  }
}

// ---------------------------------------------------------------------------
// Engine integration

TEST(EngineAutotune, OneSearchThenCacheHitsAndBitExactResults) {
  EngineOptions eo;
  eo.workers = 1;
  eo.autotune = AutotuneMode::search;
  eo.tuning_cache_path = "";
  eo.autotune_probe_cells = 4 * 1024;
  StencilEngine engine(eo);

  const TapSet taps = StarStencil::make_benchmark(2, 2, 7).to_taps();
  const AcceleratorConfig cfg = base2d(2);
  const int iters = 4;
  Grid2D<float> input(96, 64);
  input.fill_random(21, -1.0f, 1.0f);
  Grid2D<float> want = input;
  StencilAccelerator(taps, cfg).run(want, iters);

  constexpr int kJobs = 3;
  for (int i = 0; i < kJobs; ++i) {
    JobResult r = engine.run(JobSpec(taps, cfg, Grid2D<float>(input), iters));
    EXPECT_TRUE(r.plan_tuned);
    EXPECT_TRUE(compare_exact(r.grid2d(), want).identical());
  }
  const EngineStats s = engine.stats();
  EXPECT_EQ(s.tuner_search_runs, 1);
  EXPECT_EQ(s.tuner_cache_misses, 1);
  EXPECT_EQ(s.tuner_cache_hits, kJobs - 1);
  EXPECT_GE(s.tuner_search_candidates, 1);
  EXPECT_GT(s.tuner_search_ns, 0);
}

TEST(EngineAutotune, OffModeLeavesPlansUntuned) {
  StencilEngine engine({.workers = 1});
  const TapSet taps = StarStencil::make_benchmark(2, 1, 7).to_taps();
  JobResult r = engine.run(JobSpec(taps, base2d(1),
                                   [] {
                                     Grid2D<float> g(64, 32);
                                     g.fill_random(5);
                                     return g;
                                   }(),
                                   2));
  EXPECT_FALSE(r.plan_tuned);
  EXPECT_EQ(engine.stats().tuner_search_runs, 0);
  EXPECT_EQ(engine.stats().tuner_cache_hits, 0);
}

// Regression: a single-block partial-pass geometry (partime deeper than
// the iteration count, block covering the whole grid) served through the
// engine -- where scratch comes from the buffer pool instead of a fresh
// zeroed allocation -- must stay bit-exact. This is exactly the shape of
// plan the autotuner likes to pick for small grids.
TEST(EngineAutotune, PartialPassSingleBlockPlanIsBitExactThroughThePool) {
  const TapSet taps = StarStencil::make_benchmark(2, 2, 7).to_taps();
  AcceleratorConfig cfg = base2d(2);
  cfg.bsize_x = 128;  // one block: 96 + 2*halo with partime 8
  cfg.partime = 8;    // iters = 4 => a single partial pass
  const int iters = 4;

  Grid2D<float> init(96, 64);
  init.fill_random(41, -1.0f, 1.0f);
  Grid2D<float> want = init;
  StencilAccelerator(taps, cfg).run(want, iters);

  StencilEngine engine({.workers = 1});
  for (int job = 0; job < 3; ++job) {
    JobResult r = engine.run(JobSpec(taps, cfg, Grid2D<float>(init), iters));
    EXPECT_TRUE(compare_exact(r.grid2d(), want).identical())
        << "job " << job << " diverged";
  }
}

// Regression: a probe on a short calibration slab must leave no residue
// (thread-local kernel workspace, malloc recycling) that changes the
// bits of a later full-size run of the same geometry in the same thread.
TEST(HostAutotuner, ProbeLeavesNoResidueThatChangesLaterRuns) {
  const TapSet taps = StarStencil::make_benchmark(2, 2, 7).to_taps();
  AcceleratorConfig cfg = base2d(2);
  cfg.bsize_x = 128;
  cfg.partime = 8;
  const int iters = 4;

  Grid2D<float> init(96, 64);
  init.fill_random(41, -1.0f, 1.0f);
  Grid2D<float> want = init;
  StencilAccelerator(taps, cfg).run(want, iters);

  HostAutotuner tuner(tiny_options(""));
  for (int rep = 0; rep < 5; ++rep) {
    (void)tuner.probe(taps, cfg, 96, 64, 1, nullptr);
    Grid2D<float> got = init;
    std::vector<float> scratch;  // empty: adopted+resized, like the pool
    StencilAccelerator(taps, cfg).run(got, iters, &scratch);
    EXPECT_TRUE(compare_exact(got, want).identical()) << "rep " << rep;
  }
}

TEST(ClusterAutotune, OptionsFlowThroughToEveryShard) {
  ClusterOptions copts;
  copts.shards = 2;
  copts.engine.workers = 1;
  copts.engine.autotune = AutotuneMode::search;
  copts.engine.tuning_cache_path = "";
  copts.engine.autotune_probe_cells = 4 * 1024;
  EngineCluster cluster(copts);

  const TapSet taps = StarStencil::make_benchmark(2, 2, 7).to_taps();
  const AcceleratorConfig cfg = base2d(2);
  const int iters = 4;
  Grid2D<float> input(96, 64);
  input.fill_random(22, -1.0f, 1.0f);
  Grid2D<float> want = input;
  StencilAccelerator(taps, cfg).run(want, iters);

  JobHandle h = cluster.submit(JobSpec(taps, cfg, Grid2D<float>(input), iters));
  JobResult& r = h.wait();
  EXPECT_TRUE(r.plan_tuned);
  EXPECT_TRUE(compare_exact(r.grid2d(), want).identical());
}

}  // namespace
}  // namespace fpga_stencil
