// Tests for the blocking channel's shutdown and timeout semantics: the
// watchdog unwinds a stalled pipeline by closing channels, so writers must
// see a typed recoverable error (never an abort) and the timed variants
// must distinguish timeout from closed.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "pipeline/sync_channel.hpp"

namespace fpga_stencil {
namespace {

using namespace std::chrono_literals;

TEST(SyncChannel, BlockingRoundTrip) {
  SyncChannel<int> ch(2);
  ch.write(1);
  ch.write(2);
  EXPECT_EQ(ch.read().value(), 1);
  EXPECT_EQ(ch.read().value(), 2);
}

TEST(SyncChannel, ReadDrainsThenSeesEndOfStream) {
  SyncChannel<int> ch(4);
  ch.write(7);
  ch.close();
  EXPECT_EQ(ch.read().value(), 7);          // buffered data survives close
  EXPECT_FALSE(ch.read().has_value());      // then end-of-stream
}

TEST(SyncChannel, WriteToClosedThrowsTyped) {
  SyncChannel<int> ch(4);
  ch.close();
  EXPECT_TRUE(ch.closed());
  EXPECT_THROW(ch.write(1), ChannelClosedError);
}

TEST(SyncChannel, BlockedWriterUnblocksOnCloseWithTypedError) {
  SyncChannel<int> ch(1);
  ch.write(1);  // channel now full; the next write blocks
  std::thread closer([&] {
    std::this_thread::sleep_for(20ms);
    ch.close();
  });
  EXPECT_THROW(ch.write(2), ChannelClosedError);
  closer.join();
}

TEST(SyncChannel, BlockedReaderUnblocksOnClose) {
  SyncChannel<int> ch(1);
  std::thread closer([&] {
    std::this_thread::sleep_for(20ms);
    ch.close();
  });
  EXPECT_FALSE(ch.read().has_value());
  closer.join();
}

TEST(SyncChannel, TimedWriteOkAndTimeout) {
  SyncChannel<int> ch(1);
  int v = 1;
  EXPECT_EQ(ch.try_write_for(v, 5ms), ChannelStatus::ok);
  int w = 2;
  EXPECT_EQ(ch.try_write_for(w, 5ms), ChannelStatus::timed_out);
  EXPECT_EQ(w, 2);  // value not consumed on timeout
  EXPECT_EQ(ch.read().value(), 1);
}

TEST(SyncChannel, TimedReadOkAndTimeout) {
  SyncChannel<int> ch(1);
  int out = -1;
  EXPECT_EQ(ch.read_for(out, 5ms), ChannelStatus::timed_out);
  ch.write(9);
  EXPECT_EQ(ch.read_for(out, 5ms), ChannelStatus::ok);
  EXPECT_EQ(out, 9);
}

// The ordering the watchdog drain loops rely on: a full/empty channel
// first reports timed_out, and after close() reports closed -- never the
// other way around, and never an exception.
TEST(SyncChannel, TimedWriteTimeoutThenClosedOrdering) {
  SyncChannel<int> ch(1);
  int v = 1;
  ASSERT_EQ(ch.try_write_for(v, 1ms), ChannelStatus::ok);
  int w = 2;
  EXPECT_EQ(ch.try_write_for(w, 1ms), ChannelStatus::timed_out);
  ch.close();
  EXPECT_EQ(ch.try_write_for(w, 1ms), ChannelStatus::closed);
  // closed wins over full: no timeout is reported once the channel closed
  EXPECT_EQ(ch.try_write_for(w, 0ms), ChannelStatus::closed);
}

TEST(SyncChannel, TimedReadTimeoutThenClosedOrdering) {
  SyncChannel<int> ch(1);
  int out = -1;
  EXPECT_EQ(ch.read_for(out, 1ms), ChannelStatus::timed_out);
  ch.write(3);
  ch.close();
  // buffered data still drains as ok after close ...
  EXPECT_EQ(ch.read_for(out, 1ms), ChannelStatus::ok);
  EXPECT_EQ(out, 3);
  // ... and only a closed-and-drained channel reports closed
  EXPECT_EQ(ch.read_for(out, 1ms), ChannelStatus::closed);
}

TEST(SyncChannel, BlockedTimedWriterSeesCloseBeforeDeadline) {
  SyncChannel<int> ch(1);
  ch.write(1);
  std::thread closer([&] {
    std::this_thread::sleep_for(10ms);
    ch.close();
  });
  int w = 2;
  // Deadline far beyond the close: the close must win, as closed.
  EXPECT_EQ(ch.try_write_for(w, 5s), ChannelStatus::closed);
  closer.join();
}

TEST(SyncChannel, CloseIsIdempotent) {
  SyncChannel<int> ch(1);
  ch.close();
  ch.close();
  EXPECT_TRUE(ch.closed());
}

}  // namespace
}  // namespace fpga_stencil
