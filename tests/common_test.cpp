// Unit tests for the common utilities.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/class_queue.hpp"
#include "common/expect.hpp"
#include "common/format.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/token_bucket.hpp"

namespace fpga_stencil {
namespace {

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 5), 2);
  EXPECT_EQ(ceil_div(11, 5), 3);
  EXPECT_EQ(ceil_div(1, 5), 1);
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div<std::int64_t>(16096, 4024), 4);
}

TEST(MathUtil, RoundUpDown) {
  EXPECT_EQ(round_up(13, 4), 16);
  EXPECT_EQ(round_up(16, 4), 16);
  EXPECT_EQ(round_down(13, 4), 12);
  EXPECT_EQ(round_down(16, 4), 16);
}

TEST(MathUtil, IsMultiple) {
  EXPECT_TRUE(is_multiple(12, 4));
  EXPECT_FALSE(is_multiple(13, 4));
  EXPECT_FALSE(is_multiple(13, 0));  // no division by zero
}

TEST(MathUtil, ClampIndex) {
  EXPECT_EQ(clamp_index(-3, 0, 9), 0);
  EXPECT_EQ(clamp_index(12, 0, 9), 9);
  EXPECT_EQ(clamp_index(5, 0, 9), 5);
  EXPECT_EQ(clamp_index(0, 0, 9), 0);
  EXPECT_EQ(clamp_index(9, 0, 9), 9);
}

TEST(MathUtil, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
}

TEST(SplitMix64, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(SplitMix64, FloatRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.next_float(0.25f, 0.5f);
    EXPECT_GE(v, 0.25f);
    EXPECT_LT(v, 0.5f);
  }
}

TEST(Format, Fixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(100.0, 0), "100");
  EXPECT_EQ(format_fixed(-2.5, 1), "-2.5");
}

TEST(Format, Percent) {
  EXPECT_EQ(format_percent(0.85), "85%");
  EXPECT_EQ(format_percent(1.0), "100%");
}

TEST(Format, Grouped) {
  EXPECT_EQ(format_grouped(0), "0");
  EXPECT_EQ(format_grouped(999), "999");
  EXPECT_EQ(format_grouped(1000), "1,000");
  EXPECT_EQ(format_grouped(16096), "16,096");
  EXPECT_EQ(format_grouped(1234567890ULL), "1,234,567,890");
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_bytes(5 * 1024 * 1024ULL), "5.00 MiB");
}

TEST(Format, Dims) {
  EXPECT_EQ(format_dims2(256, 128), "256x128");
  EXPECT_EQ(format_dims3(696, 728, 696), "696x728x696");
}

TEST(TextTable, RendersAligned) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.render(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, ShortRowsAllowedLongRowsRejected) {
  TextTable t({"a", "b", "c"});
  EXPECT_NO_THROW(t.add_row({"only-one"}));
  EXPECT_THROW(t.add_row({"1", "2", "3", "4"}), ConfigError);
}

TEST(TextTable, RuleInsertedBetweenGroups) {
  TextTable t({"x"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  std::ostringstream os;
  t.render(os);
  // header rule + group rule + closing rule + top rule = 4 dashes lines
  int rules = 0;
  std::istringstream is(os.str());
  std::string line;
  while (std::getline(is, line)) rules += line.find('+') == 0;
  EXPECT_EQ(rules, 4);
}

TEST(Expect, ThrowsConfigError) {
  EXPECT_THROW(FPGASTENCIL_EXPECT(false, "boom"), ConfigError);
  EXPECT_NO_THROW(FPGASTENCIL_EXPECT(true, "fine"));
}

TEST(Expect, MessageContainsContext) {
  try {
    FPGASTENCIL_EXPECT(1 == 2, "the message");
    FAIL() << "should have thrown";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("the message"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

// -------------------------------------------------------------------------
// TokenBucket: driven with explicit time points, no sleeping.

TEST(TokenBucket, RefillsAtRateUpToBurst) {
  const auto t0 = TokenBucket::Clock::now();
  TokenBucket bucket(/*rate_per_s=*/10.0, /*burst=*/2.0);
  // Starts full: the burst drains immediately, the third acquire fails.
  EXPECT_TRUE(bucket.try_acquire_at(t0));
  EXPECT_TRUE(bucket.try_acquire_at(t0));
  EXPECT_FALSE(bucket.try_acquire_at(t0));
  // One token matures every 100 ms at 10/s.
  EXPECT_EQ(bucket.time_until_at(t0), std::chrono::milliseconds(100) +
                                          std::chrono::nanoseconds(1));
  EXPECT_FALSE(bucket.try_acquire_at(t0 + std::chrono::milliseconds(50)));
  EXPECT_TRUE(bucket.try_acquire_at(t0 + std::chrono::milliseconds(101)));
  // Refill caps at burst: a long idle stretch banks 2 tokens, not 20.
  const auto late = t0 + std::chrono::seconds(10);
  EXPECT_TRUE(bucket.try_acquire_at(late));
  EXPECT_TRUE(bucket.try_acquire_at(late));
  EXPECT_FALSE(bucket.try_acquire_at(late));
}

TEST(TokenBucket, ZeroRateIsUnlimited) {
  TokenBucket bucket;
  EXPECT_FALSE(bucket.limited());
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(bucket.try_acquire());
  EXPECT_EQ(bucket.time_until(), std::chrono::nanoseconds(0));
}

TEST(TokenBucket, FailedAcquireLeavesTokensUntouched) {
  const auto t0 = TokenBucket::Clock::now();
  TokenBucket bucket(1.0, 1.0);
  EXPECT_TRUE(bucket.try_acquire_at(t0));
  // Repeated over-quota probes must not push the next success further out.
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(bucket.try_acquire_at(t0));
  EXPECT_TRUE(bucket.try_acquire_at(t0 + std::chrono::milliseconds(1001)));
}

// -------------------------------------------------------------------------
// WeightedClassQueue: the QoS scheduling policy, in isolation.

TEST(WeightedClassQueue, WeightedRoundRobinAcrossClasses) {
  WeightedClassQueue<std::string> q({2, 1});
  for (int i = 0; i < 4; ++i) {
    q.push(0, 0, "a" + std::to_string(i));
    q.push(1, 0, "b" + std::to_string(i));
  }
  // Per refill round: two from class 0, one from class 1.
  std::vector<std::string> order;
  while (!q.empty()) order.push_back(q.pop());
  const std::vector<std::string> want = {"a0", "a1", "b0", "a2", "a3",
                                         "b1", "b2", "b3"};
  EXPECT_EQ(order, want);
}

TEST(WeightedClassQueue, PriorityThenFifoWithinClass) {
  WeightedClassQueue<int> q({1});
  q.push(0, /*priority=*/0, 1);
  q.push(0, /*priority=*/5, 2);
  q.push(0, /*priority=*/5, 3);
  q.push(0, /*priority=*/-1, 4);
  EXPECT_EQ(q.pop(), 2);  // highest priority first
  EXPECT_EQ(q.pop(), 3);  // FIFO among equals
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 4);
}

TEST(WeightedClassQueue, LowWeightClassIsNeverStarved) {
  WeightedClassQueue<int> q({8, 1});
  for (int i = 0; i < 100; ++i) q.push(0, 0, i);
  q.push(1, 0, 999);
  // The batch item surfaces within one full credit round (8 favored pops),
  // not after all 100.
  bool seen = false;
  for (int i = 0; i < 10 && !seen; ++i) seen = q.pop() == 999;
  EXPECT_TRUE(seen);
}

TEST(WeightedClassQueue, ForEachVisitsEverythingAndClampsClasses) {
  WeightedClassQueue<int> q({1, 1});
  q.push(0, 0, 1);
  q.push(7, 0, 2);  // out-of-range class clamps to the last class
  int sum = 0;
  q.for_each([&](int& v) { sum += v; });
  EXPECT_EQ(sum, 3);
  EXPECT_EQ(q.size(), 2u);
  q.clear();
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace fpga_stencil
