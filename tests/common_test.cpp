// Unit tests for the common utilities.
#include <gtest/gtest.h>

#include <sstream>

#include "common/expect.hpp"
#include "common/format.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace fpga_stencil {
namespace {

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 5), 2);
  EXPECT_EQ(ceil_div(11, 5), 3);
  EXPECT_EQ(ceil_div(1, 5), 1);
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div<std::int64_t>(16096, 4024), 4);
}

TEST(MathUtil, RoundUpDown) {
  EXPECT_EQ(round_up(13, 4), 16);
  EXPECT_EQ(round_up(16, 4), 16);
  EXPECT_EQ(round_down(13, 4), 12);
  EXPECT_EQ(round_down(16, 4), 16);
}

TEST(MathUtil, IsMultiple) {
  EXPECT_TRUE(is_multiple(12, 4));
  EXPECT_FALSE(is_multiple(13, 4));
  EXPECT_FALSE(is_multiple(13, 0));  // no division by zero
}

TEST(MathUtil, ClampIndex) {
  EXPECT_EQ(clamp_index(-3, 0, 9), 0);
  EXPECT_EQ(clamp_index(12, 0, 9), 9);
  EXPECT_EQ(clamp_index(5, 0, 9), 5);
  EXPECT_EQ(clamp_index(0, 0, 9), 0);
  EXPECT_EQ(clamp_index(9, 0, 9), 9);
}

TEST(MathUtil, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
}

TEST(SplitMix64, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(SplitMix64, FloatRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.next_float(0.25f, 0.5f);
    EXPECT_GE(v, 0.25f);
    EXPECT_LT(v, 0.5f);
  }
}

TEST(Format, Fixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(100.0, 0), "100");
  EXPECT_EQ(format_fixed(-2.5, 1), "-2.5");
}

TEST(Format, Percent) {
  EXPECT_EQ(format_percent(0.85), "85%");
  EXPECT_EQ(format_percent(1.0), "100%");
}

TEST(Format, Grouped) {
  EXPECT_EQ(format_grouped(0), "0");
  EXPECT_EQ(format_grouped(999), "999");
  EXPECT_EQ(format_grouped(1000), "1,000");
  EXPECT_EQ(format_grouped(16096), "16,096");
  EXPECT_EQ(format_grouped(1234567890ULL), "1,234,567,890");
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_bytes(5 * 1024 * 1024ULL), "5.00 MiB");
}

TEST(Format, Dims) {
  EXPECT_EQ(format_dims2(256, 128), "256x128");
  EXPECT_EQ(format_dims3(696, 728, 696), "696x728x696");
}

TEST(TextTable, RendersAligned) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.render(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, ShortRowsAllowedLongRowsRejected) {
  TextTable t({"a", "b", "c"});
  EXPECT_NO_THROW(t.add_row({"only-one"}));
  EXPECT_THROW(t.add_row({"1", "2", "3", "4"}), ConfigError);
}

TEST(TextTable, RuleInsertedBetweenGroups) {
  TextTable t({"x"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  std::ostringstream os;
  t.render(os);
  // header rule + group rule + closing rule + top rule = 4 dashes lines
  int rules = 0;
  std::istringstream is(os.str());
  std::string line;
  while (std::getline(is, line)) rules += line.find('+') == 0;
  EXPECT_EQ(rules, 4);
}

TEST(Expect, ThrowsConfigError) {
  EXPECT_THROW(FPGASTENCIL_EXPECT(false, "boom"), ConfigError);
  EXPECT_NO_THROW(FPGASTENCIL_EXPECT(true, "fine"));
}

TEST(Expect, MessageContainsContext) {
  try {
    FPGASTENCIL_EXPECT(1 == 2, "the message");
    FAIL() << "should have thrown";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("the message"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace fpga_stencil
